package par

import (
	"argo/internal/adl"
	"argo/internal/htg"
	"argo/internal/ir"
	"argo/internal/sched"
	"argo/internal/syswcet"
)

// Index-based freeze/thaw of a Program, which makes the par-build pass
// cacheable: the frozen form holds buffer placements, synchronization
// programs, and DMA staging by variable registration index instead of
// live *ir.Var pointers, so a thaw can rebind it to whichever
// equal-fingerprint IR/graph/schedule the restoring pipeline holds.
//
// Build has one side effect on the live IR — placeBuffers sets
// v.Storage = StorageShared for every variable it places in shared
// memory (the demotion feedback the transformation stage consumes).
// Thaw replays exactly that mutation from the frozen placements, so a
// restored round leaves the IR in the bit-identical state a fresh Build
// would, and the feedback loop's round sequence is reproduced.

// Snapshot is the pointer-free form of a Program.
type Snapshot struct {
	CoreEntries    [][]Entry
	Buffers        []frozenBuffer
	Demoted        []int32
	Signals        int
	PrologueCycles int64
	EpilogueCycles int64
	DMAIns         []frozenDMA
	DMAOuts        []frozenDMA
}

type frozenBuffer struct {
	V       int32
	Spc     Space
	Core    int
	Addr    int
	Replica bool
}

type frozenDMA struct {
	V     int32
	Core  int
	Bytes int
	In    bool
}

// Freeze encodes the program against idx. ok is false when any placed
// or demoted variable is not registered in the source program's Vars
// table, in which case the program must not be cached.
func (p *Program) Freeze(idx *ir.SnapshotIndex) (*Snapshot, bool) {
	s := &Snapshot{
		CoreEntries:    make([][]Entry, len(p.CoreEntries)),
		Buffers:        make([]frozenBuffer, len(p.Buffers)),
		Signals:        p.Signals,
		PrologueCycles: p.PrologueCycles,
		EpilogueCycles: p.EpilogueCycles,
	}
	for c, entries := range p.CoreEntries {
		s.CoreEntries[c] = append([]Entry(nil), entries...)
	}
	for i, b := range p.Buffers {
		j, ok := idx.Var(b.V)
		if !ok {
			return nil, false
		}
		s.Buffers[i] = frozenBuffer{V: j, Spc: b.Spc, Core: b.Core, Addr: b.Addr, Replica: b.Replica}
	}
	if p.Demoted != nil {
		s.Demoted = make([]int32, len(p.Demoted))
		for i, v := range p.Demoted {
			j, ok := idx.Var(v)
			if !ok {
				return nil, false
			}
			s.Demoted[i] = j
		}
	}
	freezeDMA := func(ops []DMAOp) ([]frozenDMA, bool) {
		if ops == nil {
			return nil, true
		}
		out := make([]frozenDMA, len(ops))
		for i, op := range ops {
			j, ok := idx.Var(op.V)
			if !ok {
				return nil, false
			}
			out[i] = frozenDMA{V: j, Core: op.Core, Bytes: op.Bytes, In: op.In}
		}
		return out, true
	}
	var ok bool
	if s.DMAIns, ok = freezeDMA(p.DMAIns); !ok {
		return nil, false
	}
	if s.DMAOuts, ok = freezeDMA(p.DMAOuts); !ok {
		return nil, false
	}
	return s, true
}

// Thaw rebuilds a live Program bound to the restoring pipeline's
// artifacts, replaying Build's storage side effect on irProg (every
// shared-placed buffer's variable is set to StorageShared — the exact
// set Build's placement loop mutates). The result carries a fresh cache
// slot: downstream consumers re-derive their per-program state.
func (s *Snapshot) Thaw(tab *ir.SnapshotTable, platform *adl.Platform, irProg *ir.Program,
	g *htg.Graph, in *sched.Input, sc *sched.Schedule, sys *syswcet.Result) *Program {
	p := &Program{
		Platform: platform, IR: irProg, Graph: g, Input: in, Schedule: sc, System: sys,
		CoreEntries:    make([][]Entry, len(s.CoreEntries)),
		Buffers:        make([]Buffer, len(s.Buffers)),
		Signals:        s.Signals,
		PrologueCycles: s.PrologueCycles,
		EpilogueCycles: s.EpilogueCycles,
	}
	for c, entries := range s.CoreEntries {
		p.CoreEntries[c] = append([]Entry(nil), entries...)
	}
	for i, b := range s.Buffers {
		v := tab.Var(b.V)
		p.Buffers[i] = Buffer{V: v, Spc: b.Spc, Core: b.Core, Addr: b.Addr, Replica: b.Replica}
		if b.Spc == SpaceShared {
			v.Storage = ir.StorageShared
		}
	}
	if s.Demoted != nil {
		p.Demoted = make([]*ir.Var, len(s.Demoted))
		for i, j := range s.Demoted {
			p.Demoted[i] = tab.Var(j)
		}
	}
	thawDMA := func(ops []frozenDMA) []DMAOp {
		if ops == nil {
			return nil
		}
		out := make([]DMAOp, len(ops))
		for i, op := range ops {
			out[i] = DMAOp{V: tab.Var(op.V), Core: op.Core, Bytes: op.Bytes, In: op.In}
		}
		return out
	}
	p.DMAIns = thawDMA(s.DMAIns)
	p.DMAOuts = thawDMA(s.DMAOuts)
	return p
}
