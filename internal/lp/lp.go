// Package lp implements a small, dependency-free linear-programming
// solver: a two-phase dense simplex with Bland's anti-cycling rule, plus
// branch-and-bound for mixed-integer problems.
//
// It is the substrate for the IPET (implicit path enumeration technique)
// formulation of code-level WCET analysis in internal/wcet, playing the
// role a commercial ILP solver plays for tools like aiT. Problems are
// stated in the natural form
//
//	maximize    c · x
//	subject to  A x (<= | = | >=) b ,  x >= 0
//
// with optional integrality restrictions per variable.
package lp

import (
	"fmt"
	"math"
)

// Relation is a constraint comparator.
type Relation int

// Constraint relations.
const (
	LE Relation = iota // <=
	GE                 // >=
	EQ                 // ==
)

// String returns the relation's symbol.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Constraint is one linear constraint: Coef · x  Rel  RHS.
type Constraint struct {
	Coef []float64
	Rel  Relation
	RHS  float64
}

// Problem is a maximization problem over n = len(Obj) variables, all
// implicitly >= 0.
type Problem struct {
	Obj     []float64
	Cons    []Constraint
	Integer []bool // optional; nil means fully continuous
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return len(p.Obj) }

// AddLE appends coef·x <= rhs.
func (p *Problem) AddLE(coef []float64, rhs float64) {
	p.Cons = append(p.Cons, Constraint{Coef: coef, Rel: LE, RHS: rhs})
}

// AddGE appends coef·x >= rhs.
func (p *Problem) AddGE(coef []float64, rhs float64) {
	p.Cons = append(p.Cons, Constraint{Coef: coef, Rel: GE, RHS: rhs})
}

// AddEQ appends coef·x == rhs.
func (p *Problem) AddEQ(coef []float64, rhs float64) {
	p.Cons = append(p.Cons, Constraint{Coef: coef, Rel: EQ, RHS: rhs})
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "?"
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
}

const eps = 1e-9

// Solve solves the LP relaxation of p (ignoring Integer).
func Solve(p *Problem) Solution {
	t, err := newTableau(p)
	if err != nil {
		return Solution{Status: Infeasible}
	}
	return t.solve()
}

// SolveMIP solves p with its integrality restrictions via best-first
// branch-and-bound on the LP relaxation.
func SolveMIP(p *Problem) Solution {
	relax := Solve(p)
	if relax.Status != Optimal || p.Integer == nil {
		return relax
	}
	if idx := firstFractional(relax.X, p.Integer); idx < 0 {
		return relax
	}
	best := Solution{Status: Infeasible, Obj: math.Inf(-1)}
	// Depth-first with an explicit stack of extra bound constraints.
	type node struct{ extra []Constraint }
	stack := []node{{}}
	iters := 0
	for len(stack) > 0 {
		iters++
		if iters > 100_000 {
			break // bail out; best-so-far is still a valid incumbent
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sub := &Problem{Obj: p.Obj, Cons: append(append([]Constraint{}, p.Cons...), nd.extra...), Integer: p.Integer}
		sol := Solve(sub)
		if sol.Status != Optimal {
			continue
		}
		if sol.Obj <= best.Obj+eps {
			continue // bound: cannot beat incumbent
		}
		idx := firstFractional(sol.X, p.Integer)
		if idx < 0 {
			best = sol
			continue
		}
		fl := math.Floor(sol.X[idx])
		n := p.NumVars()
		down := make([]float64, n)
		down[idx] = 1
		up := make([]float64, n)
		up[idx] = 1
		stack = append(stack,
			node{extra: append(append([]Constraint{}, nd.extra...), Constraint{Coef: down, Rel: LE, RHS: fl})},
			node{extra: append(append([]Constraint{}, nd.extra...), Constraint{Coef: up, Rel: GE, RHS: fl + 1})},
		)
	}
	if best.Status == Optimal {
		return best
	}
	return Solution{Status: Infeasible}
}

func firstFractional(x []float64, integer []bool) int {
	for i, xi := range x {
		if i < len(integer) && integer[i] {
			if math.Abs(xi-math.Round(xi)) > 1e-6 {
				return i
			}
		}
	}
	return -1
}

// --- two-phase simplex ------------------------------------------------------

// tableau is a dense simplex tableau in standard form: maximize c·x with
// equality rows after adding slack/surplus/artificial variables.
type tableau struct {
	m, n     int // constraints, total columns (structural + slack + artificial)
	a        [][]float64
	b        []float64
	c        []float64
	basis    []int
	nStruct  int
	artStart int
}

func newTableau(p *Problem) (*tableau, error) {
	m := len(p.Cons)
	nStruct := p.NumVars()
	for _, con := range p.Cons {
		if len(con.Coef) != nStruct {
			return nil, fmt.Errorf("lp: constraint has %d coefficients, want %d", len(con.Coef), nStruct)
		}
	}
	// Count slacks and artificials.
	nSlack := 0
	for _, con := range p.Cons {
		if con.Rel != EQ {
			nSlack++
		}
	}
	nArt := m // one artificial per row keeps phase 1 trivial
	n := nStruct + nSlack + nArt
	t := &tableau{
		m: m, n: n, nStruct: nStruct, artStart: nStruct + nSlack,
		a: make([][]float64, m), b: make([]float64, m),
		c: make([]float64, n), basis: make([]int, m),
	}
	copy(t.c, p.Obj)
	slack := nStruct
	for i, con := range p.Cons {
		row := make([]float64, n)
		copy(row, con.Coef)
		rhs := con.RHS
		sign := 1.0
		if rhs < 0 { // normalize rhs >= 0
			sign = -1
			for j := range con.Coef {
				row[j] = -row[j]
			}
			rhs = -rhs
		}
		switch con.Rel {
		case LE:
			row[slack] = sign * 1
			slack++
		case GE:
			row[slack] = sign * -1
			slack++
		}
		// Artificial variable (always basic initially).
		row[t.artStart+i] = 1
		t.a[i] = row
		t.b[i] = rhs
		t.basis[i] = t.artStart + i
	}
	return t, nil
}

// pivot performs a pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pv := t.a[row][col]
	for j := 0; j < t.n; j++ {
		t.a[row][j] /= pv
	}
	t.b[row] /= pv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.b[i] -= f * t.b[row]
	}
	t.basis[row] = col
}

// runSimplex maximizes objective coefficients obj over the current
// tableau (obj has length t.n). allowed limits eligible entering columns.
func (t *tableau) runSimplex(obj []float64, allowed func(int) bool) Status {
	// Reduced costs require expressing obj through the basis: maintain
	// z_j - c_j implicitly by recomputing per iteration (m and n are
	// small for IPET problems; clarity over speed).
	for iter := 0; iter < 10000; iter++ {
		// y = c_B B^{-1} is implicit: compute reduced costs r_j = obj_j - sum_i obj_basis[i] * a[i][j].
		cb := make([]float64, t.m)
		for i, bi := range t.basis {
			cb[i] = obj[bi]
		}
		entering := -1
		for j := 0; j < t.n; j++ {
			if !allowed(j) {
				continue
			}
			r := obj[j]
			for i := 0; i < t.m; i++ {
				r -= cb[i] * t.a[i][j]
			}
			if r > eps { // Bland: first improving column
				entering = j
				break
			}
		}
		if entering < 0 {
			return Optimal
		}
		// Ratio test (Bland: smallest basis index tie-break).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][entering] > eps {
				ratio := t.b[i] / t.a[i][entering]
				if ratio < bestRatio-eps || (math.Abs(ratio-bestRatio) <= eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, entering)
	}
	return Unbounded // did not converge; treat as failure
}

func (t *tableau) solve() Solution {
	// Phase 1: minimize sum of artificials == maximize -sum(artificials).
	phase1 := make([]float64, t.n)
	for j := t.artStart; j < t.n; j++ {
		phase1[j] = -1
	}
	st := t.runSimplex(phase1, func(int) bool { return true })
	if st != Optimal {
		return Solution{Status: Infeasible}
	}
	artSum := 0.0
	for i, bi := range t.basis {
		if bi >= t.artStart {
			artSum += t.b[i]
		}
	}
	if artSum > 1e-6 {
		return Solution{Status: Infeasible}
	}
	// Drive remaining artificials out of the basis where possible.
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artStart && t.b[i] <= eps {
			for j := 0; j < t.artStart; j++ {
				if math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					break
				}
			}
		}
	}
	// Phase 2: maximize the real objective, artificials barred.
	obj := make([]float64, t.n)
	copy(obj, t.c)
	st = t.runSimplex(obj, func(j int) bool { return j < t.artStart })
	if st != Optimal {
		return Solution{Status: st}
	}
	x := make([]float64, t.nStruct)
	objVal := 0.0
	for i, bi := range t.basis {
		if bi < t.nStruct {
			x[bi] = t.b[i]
		}
	}
	for j, cj := range t.c[:t.nStruct] {
		objVal += cj * x[j]
	}
	return Solution{Status: Optimal, X: x, Obj: objVal}
}
