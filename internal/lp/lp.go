// Package lp implements a small, dependency-free linear-programming
// solver: a two-phase dense simplex with Bland's anti-cycling rule, plus
// branch-and-bound for mixed-integer problems.
//
// It is the substrate for the IPET (implicit path enumeration technique)
// formulation of code-level WCET analysis in internal/wcet, playing the
// role a commercial ILP solver plays for tools like aiT. Problems are
// stated in the natural form
//
//	maximize    c · x
//	subject to  A x (<= | = | >=) b ,  x >= 0
//
// with optional integrality restrictions per variable.
//
// The solver state lives in a Workspace: a flat backing array holds the
// dense tableau, and repeated solves on one workspace reuse that memory,
// so the steady state allocates only the returned Solution.X. The
// package-level Solve/SolveMIP draw workspaces from an internal pool.
// SolveMIP warm-starts every branch-and-bound child from its parent's
// optimal basis: the branching bound is appended as one extra row and
// primal feasibility is restored with a dual-simplex pass, instead of
// re-solving each node from scratch.
package lp

import (
	"fmt"
	"math"
	"sync"
)

// Relation is a constraint comparator.
type Relation int

// Constraint relations.
const (
	LE Relation = iota // <=
	GE                 // >=
	EQ                 // ==
)

// String returns the relation's symbol.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Constraint is one linear constraint: Coef · x  Rel  RHS.
type Constraint struct {
	Coef []float64
	Rel  Relation
	RHS  float64
}

// Problem is a maximization problem over n = len(Obj) variables, all
// implicitly >= 0.
type Problem struct {
	Obj     []float64
	Cons    []Constraint
	Integer []bool // optional; nil means fully continuous
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return len(p.Obj) }

// AddLE appends coef·x <= rhs.
func (p *Problem) AddLE(coef []float64, rhs float64) {
	p.Cons = append(p.Cons, Constraint{Coef: coef, Rel: LE, RHS: rhs})
}

// AddGE appends coef·x >= rhs.
func (p *Problem) AddGE(coef []float64, rhs float64) {
	p.Cons = append(p.Cons, Constraint{Coef: coef, Rel: GE, RHS: rhs})
}

// AddEQ appends coef·x == rhs.
func (p *Problem) AddEQ(coef []float64, rhs float64) {
	p.Cons = append(p.Cons, Constraint{Coef: coef, Rel: EQ, RHS: rhs})
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "?"
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
}

const eps = 1e-9

var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// Solve solves the LP relaxation of p (ignoring Integer) on a pooled
// workspace.
func Solve(p *Problem) Solution {
	w := wsPool.Get().(*Workspace)
	sol := w.Solve(p)
	wsPool.Put(w)
	return sol
}

// SolveMIP solves p with its integrality restrictions via depth-first
// branch-and-bound on the LP relaxation, warm-starting each node from
// its parent basis (see Workspace.SolveMIP).
func SolveMIP(p *Problem) Solution {
	w := wsPool.Get().(*Workspace)
	sol := w.SolveMIP(p)
	wsPool.Put(w)
	return sol
}

// SolveMIPReference is the naive branch-and-bound: every node rebuilds
// the full problem with its accumulated bound constraints and re-solves
// it from scratch. It explores the tree in the same order as SolveMIP
// and is kept as the differential-testing and benchmarking baseline for
// the warm-started solver.
func SolveMIPReference(p *Problem) Solution {
	relax := Solve(p)
	if relax.Status != Optimal || p.Integer == nil {
		return relax
	}
	if idx := firstFractional(relax.X, p.Integer); idx < 0 {
		return relax
	}
	best := Solution{Status: Infeasible, Obj: math.Inf(-1)}
	// Depth-first with an explicit stack of extra bound constraints.
	type node struct{ extra []Constraint }
	stack := []node{{}}
	iters := 0
	for len(stack) > 0 {
		iters++
		if iters > maxBBNodes {
			break // bail out; best-so-far is still a valid incumbent
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sub := &Problem{Obj: p.Obj, Cons: append(append([]Constraint{}, p.Cons...), nd.extra...), Integer: p.Integer}
		sol := Solve(sub)
		if sol.Status != Optimal {
			continue
		}
		if sol.Obj <= best.Obj+eps {
			continue // bound: cannot beat incumbent
		}
		idx := firstFractional(sol.X, p.Integer)
		if idx < 0 {
			best = sol
			continue
		}
		fl := math.Floor(sol.X[idx])
		n := p.NumVars()
		down := make([]float64, n)
		down[idx] = 1
		up := make([]float64, n)
		up[idx] = 1
		stack = append(stack,
			node{extra: append(append([]Constraint{}, nd.extra...), Constraint{Coef: down, Rel: LE, RHS: fl})},
			node{extra: append(append([]Constraint{}, nd.extra...), Constraint{Coef: up, Rel: GE, RHS: fl + 1})},
		)
	}
	if best.Status == Optimal {
		return best
	}
	return Solution{Status: Infeasible}
}

func firstFractional(x []float64, integer []bool) int {
	for i, xi := range x {
		if i < len(integer) && integer[i] {
			if math.Abs(xi-math.Round(xi)) > 1e-6 {
				return i
			}
		}
	}
	return -1
}

// maxBBNodes caps branch-and-bound tree exploration; best-so-far remains
// a valid incumbent on bail-out.
const maxBBNodes = 100_000

// --- workspace --------------------------------------------------------------

// Workspace holds all solver memory. A workspace may be reused for any
// number of solves — each solve fully reinitializes the tableau, growing
// the flat backing array only when a problem needs more room — so the
// steady state allocates nothing beyond the returned Solution.X.
// Workspaces are not safe for concurrent use; use one per goroutine or
// the pooled package-level Solve/SolveMIP.
type Workspace struct {
	t      tableau
	free   []*bbSnap   // branch-and-bound snapshot freelist
	xBuf   []float64   // scratch extraction buffer
	bndBuf [][]bbBound // branch-bound-list freelist (retired node bounds)
}

// takeBounds returns a zero-length bound list from the freelist (or a
// fresh one), and giveBounds retires a node's list once no live node
// references it.
func (w *Workspace) takeBounds() []bbBound {
	if k := len(w.bndBuf); k > 0 {
		bs := w.bndBuf[k-1][:0]
		w.bndBuf = w.bndBuf[:k-1]
		return bs
	}
	return nil
}

func (w *Workspace) giveBounds(bs []bbBound) {
	if cap(bs) > 0 {
		w.bndBuf = append(w.bndBuf, bs)
	}
}

// NewWorkspace returns an empty solver workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Solve solves the LP relaxation of p (ignoring Integer), reusing the
// workspace's tableau memory.
func (w *Workspace) Solve(p *Problem) Solution {
	if err := w.t.init(p); err != nil {
		return Solution{Status: Infeasible}
	}
	return w.t.solve()
}

// --- two-phase simplex ------------------------------------------------------

// tableau is a dense simplex tableau in standard form: maximize c·x with
// equality rows after adding slack/surplus/artificial variables. Rows
// live in one flat backing array of rowsCap×stride entries; row i is
// a[i*stride : i*stride+n]. Artificial columns occupy [artStart,
// artEnd); branch-and-bound appends bound rows and their slack columns
// past artEnd.
type tableau struct {
	m, n     int // active constraints, active columns
	stride   int // allocated row width (>= n)
	rowsCap  int // allocated rows (>= m)
	a        []float64
	b        []float64
	c        []float64 // real objective over all n columns
	basis    []int
	nStruct  int
	artStart int
	artEnd   int
	cb       []float64 // scratch: objective coefficient of each basic var
	objBuf   []float64 // scratch: phase objectives
}

func (t *tableau) row(i int) []float64 {
	return t.a[i*t.stride : i*t.stride+t.n]
}

// grow ensures capacity for mNeed rows × nNeed columns, preserving the
// active m×n region.
func (t *tableau) grow(mNeed, nNeed int) {
	if mNeed <= t.rowsCap && nNeed <= t.stride {
		return
	}
	newStride := t.stride
	if nNeed > newStride {
		newStride = 2 * t.stride
		if nNeed > newStride {
			newStride = nNeed
		}
	}
	newRows := t.rowsCap
	if mNeed > newRows {
		newRows = 2 * t.rowsCap
		if mNeed > newRows {
			newRows = mNeed
		}
	}
	na := make([]float64, newRows*newStride)
	for i := 0; i < t.m; i++ {
		copy(na[i*newStride:], t.a[i*t.stride:i*t.stride+t.n])
	}
	t.a, t.stride, t.rowsCap = na, newStride, newRows

	nb := make([]float64, newRows)
	copy(nb, t.b[:t.m])
	t.b = nb
	nbasis := make([]int, newRows)
	copy(nbasis, t.basis[:t.m])
	t.basis = nbasis
	t.cb = make([]float64, newRows)
	nc := make([]float64, newStride)
	copy(nc, t.c[:t.n])
	t.c = nc
	t.objBuf = make([]float64, newStride)
}

// init loads p into the tableau, reusing backing memory.
func (t *tableau) init(p *Problem) error {
	m := len(p.Cons)
	nStruct := p.NumVars()
	for _, con := range p.Cons {
		if len(con.Coef) != nStruct {
			return fmt.Errorf("lp: constraint has %d coefficients, want %d", len(con.Coef), nStruct)
		}
	}
	// Count slacks and artificials.
	nSlack := 0
	for _, con := range p.Cons {
		if con.Rel != EQ {
			nSlack++
		}
	}
	nArt := m // one artificial per row keeps phase 1 trivial
	n := nStruct + nSlack + nArt
	t.m, t.n = 0, 0 // nothing to preserve
	t.grow(m, n)
	t.m, t.n = m, n
	t.nStruct, t.artStart, t.artEnd = nStruct, nStruct+nSlack, n
	clear(t.c[:n])
	copy(t.c, p.Obj)
	slack := nStruct
	for i, con := range p.Cons {
		row := t.a[i*t.stride : i*t.stride+n]
		clear(row)
		copy(row, con.Coef)
		rhs := con.RHS
		sign := 1.0
		if rhs < 0 { // normalize rhs >= 0
			sign = -1
			for j := range con.Coef {
				row[j] = -row[j]
			}
			rhs = -rhs
		}
		switch con.Rel {
		case LE:
			row[slack] = sign * 1
			slack++
		case GE:
			row[slack] = sign * -1
			slack++
		}
		// Artificial variable (always basic initially).
		row[t.artStart+i] = 1
		t.b[i] = rhs
		t.basis[i] = t.artStart + i
	}
	return nil
}

// pivot performs a pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.row(row)
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	t.b[row] /= pv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		ri := t.row(i)
		f := ri[col]
		if f == 0 {
			continue
		}
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		t.b[i] -= f * t.b[row]
	}
	t.basis[row] = col
}

// allowed reports whether column j may enter the basis once phase 1 is
// done: artificials stay barred, everything else (structural, slack, and
// branch-and-bound bound columns past artEnd) is eligible.
func (t *tableau) allowed(j int) bool { return j < t.artStart || j >= t.artEnd }

// runSimplex maximizes objective coefficients obj over the current
// tableau (obj has length t.n). barArt bars artificial columns from
// entering the basis (phase 2).
func (t *tableau) runSimplex(obj []float64, barArt bool) Status {
	// Reduced costs require expressing obj through the basis: maintain
	// z_j - c_j implicitly by recomputing per iteration (m and n are
	// small for IPET problems; clarity over speed).
	for iter := 0; iter < 10000; iter++ {
		// y = c_B B^{-1} is implicit: compute reduced costs r_j = obj_j - sum_i obj_basis[i] * a[i][j].
		cb := t.cb[:t.m]
		for i, bi := range t.basis[:t.m] {
			cb[i] = obj[bi]
		}
		entering := -1
		for j := 0; j < t.n; j++ {
			if barArt && !t.allowed(j) {
				continue
			}
			r := obj[j]
			for i := 0; i < t.m; i++ {
				r -= cb[i] * t.a[i*t.stride+j]
			}
			if r > eps { // Bland: first improving column
				entering = j
				break
			}
		}
		if entering < 0 {
			return Optimal
		}
		// Ratio test (Bland: smallest basis index tie-break).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i*t.stride+entering] > eps {
				ratio := t.b[i] / t.a[i*t.stride+entering]
				if ratio < bestRatio-eps || (math.Abs(ratio-bestRatio) <= eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, entering)
	}
	return Unbounded // did not converge; treat as failure
}

func (t *tableau) solve() Solution {
	// Phase 1: minimize sum of artificials == maximize -sum(artificials).
	phase1 := t.objBuf[:t.n]
	clear(phase1)
	for j := t.artStart; j < t.artEnd; j++ {
		phase1[j] = -1
	}
	st := t.runSimplex(phase1, false)
	if st != Optimal {
		return Solution{Status: Infeasible}
	}
	artSum := 0.0
	for i, bi := range t.basis[:t.m] {
		if bi >= t.artStart && bi < t.artEnd {
			artSum += t.b[i]
		}
	}
	if artSum > 1e-6 {
		return Solution{Status: Infeasible}
	}
	// Drive remaining artificials out of the basis where possible.
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artStart && t.basis[i] < t.artEnd && t.b[i] <= eps {
			ri := t.row(i)
			for j := 0; j < t.artStart; j++ {
				if math.Abs(ri[j]) > eps {
					t.pivot(i, j)
					break
				}
			}
		}
	}
	// Phase 2: maximize the real objective, artificials barred.
	obj := t.objBuf[:t.n]
	copy(obj, t.c[:t.n])
	st = t.runSimplex(obj, true)
	if st != Optimal {
		return Solution{Status: st}
	}
	x := make([]float64, t.nStruct)
	obj2 := t.extract(x)
	return Solution{Status: Optimal, X: x, Obj: obj2}
}

// extract reads the current basic solution into x (length nStruct) and
// returns the objective value.
func (t *tableau) extract(x []float64) float64 {
	clear(x)
	for i, bi := range t.basis[:t.m] {
		if bi < t.nStruct {
			x[bi] = t.b[i]
		}
	}
	objVal := 0.0
	for j, cj := range t.c[:t.nStruct] {
		objVal += cj * x[j]
	}
	return objVal
}

// --- warm-started branch-and-bound ------------------------------------------

// bbBound is one branching decision: x[idx] <= fl (down) or
// x[idx] >= fl+1 (up).
type bbBound struct {
	idx  int
	fl   float64
	down bool
}

// bbSnap is a compact snapshot of a solved tableau: the parent basis a
// branch-and-bound child warm-starts from. refs counts the children
// still waiting to restore it.
type bbSnap struct {
	refs  int
	m, n  int
	a     []float64 // compact m×n
	b     []float64
	basis []int
}

func (w *Workspace) snap() *bbSnap {
	t := &w.t
	var s *bbSnap
	if k := len(w.free); k > 0 {
		s = w.free[k-1]
		w.free = w.free[:k-1]
	} else {
		s = &bbSnap{}
	}
	need := t.m * t.n
	if cap(s.a) < need {
		s.a = make([]float64, need)
	}
	if cap(s.b) < t.m {
		s.b = make([]float64, t.m)
		s.basis = make([]int, t.m)
	}
	s.m, s.n = t.m, t.n
	for i := 0; i < t.m; i++ {
		copy(s.a[i*t.n:(i+1)*t.n], t.row(i))
	}
	copy(s.b[:t.m], t.b[:t.m])
	copy(s.basis[:t.m], t.basis[:t.m])
	return s
}

// restore loads a snapshot back into the workspace tableau. The problem
// dimensions (nStruct, artStart, artEnd) are unchanged across a
// branch-and-bound run, so only the rows, rhs, and basis move.
func (w *Workspace) restore(s *bbSnap) {
	t := &w.t
	t.grow(s.m, s.n)
	t.m, t.n = s.m, s.n
	for i := 0; i < s.m; i++ {
		copy(t.row(i), s.a[i*s.n:(i+1)*s.n])
	}
	copy(t.b[:s.m], s.b[:s.m])
	copy(t.basis[:s.m], s.basis[:s.m])
}

// release returns a snapshot to the freelist once all children consumed it.
func (w *Workspace) release(s *bbSnap) {
	s.refs--
	if s.refs <= 0 {
		w.free = append(w.free, s)
	}
}

// addBranchRow appends the bound row for bd with a fresh basic slack
// column, expressed in the current basis. The up direction is encoded in
// <=-form (-x[idx] <= -(fl+1)) so the new slack is basic with a negative
// value and a dual-simplex pass restores feasibility.
func (t *tableau) addBranchRow(bd bbBound) {
	newRow, newCol := t.m, t.n
	t.grow(newRow+1, newCol+1)
	t.m, t.n = newRow+1, newCol+1
	// The freshly exposed column may hold stale values from a previous
	// larger solve: zero it everywhere.
	for i := 0; i < newRow; i++ {
		t.a[i*t.stride+newCol] = 0
	}
	t.c[newCol] = 0
	r := t.row(newRow)
	clear(r)
	var rhs float64
	if bd.down {
		r[bd.idx] = 1
		rhs = bd.fl
	} else {
		r[bd.idx] = -1
		rhs = -(bd.fl + 1)
	}
	r[newCol] = 1
	// Express the row in the current basis: subtract basic-variable
	// multiples so every basic column reads zero. Basis columns are unit
	// columns, so one sweep suffices.
	for i := 0; i < newRow; i++ {
		f := r[t.basis[i]]
		if f == 0 {
			continue
		}
		ri := t.row(i)
		for j := range ri {
			r[j] -= f * ri[j]
		}
		rhs -= f * t.b[i]
	}
	t.b[newRow] = rhs
	t.basis[newRow] = newCol
}

// dualSimplex restores primal feasibility after bound rows made some
// basic values negative, keeping dual feasibility (optimal reduced
// costs) throughout. Returns Optimal when feasible, Infeasible when a
// negative row admits no pivot, and Unbounded as a did-not-converge
// sentinel (the caller falls back to a cold solve).
func (t *tableau) dualSimplex() Status {
	for iter := 0; iter < 10000; iter++ {
		leave := -1
		for i := 0; i < t.m; i++ {
			if t.b[i] < -eps {
				leave = i
				break
			}
		}
		if leave < 0 {
			return Optimal
		}
		cb := t.cb[:t.m]
		for i, bi := range t.basis[:t.m] {
			cb[i] = t.c[bi]
		}
		lr := t.row(leave)
		entering := -1
		bestRatio := math.Inf(1)
		for j := 0; j < t.n; j++ {
			if !t.allowed(j) {
				continue
			}
			if lr[j] < -eps {
				r := t.c[j]
				for i := 0; i < t.m; i++ {
					r -= cb[i] * t.a[i*t.stride+j]
				}
				// r <= 0 and lr[j] < 0, so the ratio is >= 0; the smallest
				// ratio keeps every reduced cost non-positive. First j wins
				// ties (Bland-style).
				if ratio := r / lr[j]; ratio < bestRatio-eps {
					bestRatio = ratio
					entering = j
				}
			}
		}
		if entering < 0 {
			return Infeasible // a row demands negativity no column can fix
		}
		t.pivot(leave, entering)
	}
	return Unbounded // did not converge; caller re-solves cold
}

// coldNode re-solves one branch-and-bound node from scratch (the rare
// fallback when the dual simplex fails to converge).
func coldNode(p *Problem, bounds []bbBound) Solution {
	n := p.NumVars()
	cons := make([]Constraint, 0, len(p.Cons)+len(bounds))
	cons = append(cons, p.Cons...)
	for _, bd := range bounds {
		coef := make([]float64, n)
		if bd.down {
			coef[bd.idx] = 1
			cons = append(cons, Constraint{Coef: coef, Rel: LE, RHS: bd.fl})
		} else {
			coef[bd.idx] = 1
			cons = append(cons, Constraint{Coef: coef, Rel: GE, RHS: bd.fl + 1})
		}
	}
	return Solve(&Problem{Obj: p.Obj, Cons: cons})
}

// SolveMIP solves p with its integrality restrictions via depth-first
// branch-and-bound, warm-starting every child node from its parent's
// optimal basis: the branching bound becomes one extra tableau row and a
// dual-simplex pass restores feasibility. Node exploration order matches
// SolveMIPReference; objective values agree within solver tolerance.
func (w *Workspace) SolveMIP(p *Problem) Solution {
	relax := w.Solve(p)
	if relax.Status != Optimal || p.Integer == nil {
		return relax
	}
	if idx := firstFractional(relax.X, p.Integer); idx < 0 {
		return relax
	}
	best := Solution{Status: Infeasible, Obj: math.Inf(-1)}
	if cap(w.xBuf) < w.t.nStruct {
		w.xBuf = make([]float64, w.t.nStruct)
	}
	x := w.xBuf[:w.t.nStruct]

	type node struct {
		snap   *bbSnap // parent basis; nil means replay bounds from the root
		bounds []bbBound
	}
	branch := func(sol trialSolution, parentBounds []bbBound, snap *bbSnap) (down, up node) {
		fl := math.Floor(sol.x[sol.fracIdx])
		mk := func(downDir bool) node {
			bs := append(w.takeBounds(), parentBounds...)
			bs = append(bs, bbBound{idx: sol.fracIdx, fl: fl, down: downDir})
			return node{snap: snap, bounds: bs}
		}
		return mk(true), mk(false)
	}

	root := w.snap()
	root.refs = 2 + 1 // two children + a driver hold for nil-snap replays
	rootSol := trialSolution{status: Optimal, x: relax.X, obj: relax.Obj,
		fracIdx: firstFractional(relax.X, p.Integer)}
	stack := make([]node, 0, 16)
	dn, up := branch(rootSol, nil, root)
	stack = append(stack, dn, up)

	iters := 0
	for len(stack) > 0 {
		iters++
		if iters > maxBBNodes {
			break // bail out; best-so-far is still a valid incumbent
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		sol := w.evalNode(p, nd.snap, root, nd.bounds, x)
		if nd.snap != nil {
			w.release(nd.snap)
		}
		if sol.status != Optimal {
			w.giveBounds(nd.bounds)
			continue
		}
		if sol.obj <= best.Obj+eps {
			w.giveBounds(nd.bounds)
			continue // bound: cannot beat incumbent
		}
		sol.fracIdx = firstFractional(sol.x, p.Integer)
		if sol.fracIdx < 0 {
			xc := make([]float64, len(sol.x))
			copy(xc, sol.x)
			best = Solution{Status: Optimal, X: xc, Obj: sol.obj}
			w.giveBounds(nd.bounds)
			continue
		}
		var snap *bbSnap
		if sol.warm { // tableau sits at this node's basis: children warm-start from it
			snap = w.snap()
			snap.refs = 2
		}
		dn, up := branch(sol, nd.bounds, snap)
		stack = append(stack, dn, up)
		// Children copied nd.bounds; the node's own list is now dead.
		w.giveBounds(nd.bounds)
	}
	w.release(root) // drop the driver hold
	if best.Status == Optimal {
		return best
	}
	return Solution{Status: Infeasible}
}

// trialSolution is one branch-and-bound node outcome; x aliases the
// workspace scratch buffer unless the node was solved cold.
type trialSolution struct {
	status  Status
	x       []float64
	obj     float64
	fracIdx int
	warm    bool // tableau holds this node's basis (snapshot-able)
}

// evalNode solves one branch-and-bound node. With a parent snapshot only
// the final bound is applied on top of the parent basis; without one the
// whole bound list replays on the root basis. Dual-simplex
// non-convergence falls back to a cold solve of the node.
func (w *Workspace) evalNode(p *Problem, snap, root *bbSnap, bounds []bbBound, x []float64) trialSolution {
	var pending []bbBound
	if snap != nil {
		w.restore(snap)
		pending = bounds[len(bounds)-1:]
	} else {
		w.restore(root)
		pending = bounds
	}
	for _, bd := range pending {
		w.t.addBranchRow(bd)
		switch w.t.dualSimplex() {
		case Optimal:
		case Infeasible:
			return trialSolution{status: Infeasible}
		default: // did not converge: solve this node from scratch
			sol := coldNode(p, bounds)
			return trialSolution{status: sol.Status, x: sol.X, obj: sol.Obj}
		}
	}
	obj := w.t.extract(x)
	return trialSolution{status: Optimal, x: x, obj: obj, warm: true}
}
