package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomMIP builds a small bounded mixed-integer problem from rng. Every
// variable gets an explicit upper bound so the relaxation is never
// unbounded and branch-and-bound terminates quickly.
func randomMIP(rng *rand.Rand) *Problem {
	n := 1 + rng.Intn(5)
	p := &Problem{Obj: make([]float64, n), Integer: make([]bool, n)}
	for j := 0; j < n; j++ {
		p.Obj[j] = float64(rng.Intn(21) - 5)
		p.Integer[j] = rng.Intn(3) > 0
	}
	m := 1 + rng.Intn(5)
	for i := 0; i < m; i++ {
		coef := make([]float64, n)
		for j := 0; j < n; j++ {
			coef[j] = float64(rng.Intn(11) - 3)
		}
		rhs := float64(rng.Intn(30) - 5)
		switch rng.Intn(4) {
		case 0:
			p.AddGE(coef, rhs)
		case 1:
			p.AddEQ(coef, rhs)
		default:
			p.AddLE(coef, rhs)
		}
	}
	for j := 0; j < n; j++ {
		coef := make([]float64, n)
		coef[j] = 1
		p.AddLE(coef, float64(3+rng.Intn(12)))
	}
	return p
}

// FuzzSolveMIP cross-checks the warm-started branch-and-bound against
// the rebuild-per-node reference: same status, and objective values
// within solver tolerance.
func FuzzSolveMIP(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		p := randomMIP(rng)
		warm := SolveMIP(p)
		cold := SolveMIPReference(p)
		if warm.Status != cold.Status {
			t.Fatalf("seed %d: warm status %v, cold status %v", seed, warm.Status, cold.Status)
		}
		if warm.Status != Optimal {
			return
		}
		tol := 1e-6 * (1 + math.Abs(cold.Obj))
		if math.Abs(warm.Obj-cold.Obj) > tol {
			t.Fatalf("seed %d: warm obj %v, cold obj %v (tol %v)", seed, warm.Obj, cold.Obj, tol)
		}
		// The incumbent must satisfy the integrality restrictions.
		if idx := firstFractional(warm.X, p.Integer); idx >= 0 {
			t.Fatalf("seed %d: warm solution fractional at %d: %v", seed, idx, warm.X[idx])
		}
	})
}

func sameSolution(a, b Solution) bool {
	if a.Status != b.Status || math.Float64bits(a.Obj) != math.Float64bits(b.Obj) || len(a.X) != len(b.X) {
		return false
	}
	for i := range a.X {
		if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) {
			return false
		}
	}
	return true
}

// TestWorkspaceDeterministic asserts that repeated solves of the same
// problem on one reused workspace are bit-identical: reinitialization
// must not leak state from earlier (including larger) solves.
func TestWorkspaceDeterministic(t *testing.T) {
	w := NewWorkspace()
	rng := rand.New(rand.NewSource(7))
	probs := make([]*Problem, 24)
	for i := range probs {
		probs[i] = randomMIP(rng)
	}
	firstLP := make([]Solution, len(probs))
	firstMIP := make([]Solution, len(probs))
	for i, p := range probs {
		firstLP[i] = w.Solve(p)
		firstMIP[i] = w.SolveMIP(p)
	}
	// Replay in a different interleaving on the same workspace.
	for round := 0; round < 2; round++ {
		for i := len(probs) - 1; i >= 0; i-- {
			if got := w.Solve(probs[i]); !sameSolution(got, firstLP[i]) {
				t.Fatalf("round %d problem %d: Solve not bit-identical: %+v vs %+v", round, i, got, firstLP[i])
			}
			if got := w.SolveMIP(probs[i]); !sameSolution(got, firstMIP[i]) {
				t.Fatalf("round %d problem %d: SolveMIP not bit-identical: %+v vs %+v", round, i, got, firstMIP[i])
			}
		}
	}
	// The pooled package-level entry points agree with a fresh workspace.
	for i, p := range probs {
		if got := Solve(p); !sameSolution(got, firstLP[i]) {
			t.Fatalf("pooled Solve differs on problem %d", i)
		}
		if got := SolveMIP(p); !sameSolution(got, firstMIP[i]) {
			t.Fatalf("pooled SolveMIP differs on problem %d", i)
		}
	}
}
