package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(b)) }

func TestSolveSimpleLE(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12.
	p := &Problem{Obj: []float64{3, 2}}
	p.AddLE([]float64{1, 1}, 4)
	p.AddLE([]float64{1, 3}, 6)
	s := Solve(p)
	if s.Status != Optimal || !near(s.Obj, 12) {
		t.Fatalf("sol: %+v", s)
	}
}

func TestSolveClassic(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> (3, 1.5), obj 21.
	p := &Problem{Obj: []float64{5, 4}}
	p.AddLE([]float64{6, 4}, 24)
	p.AddLE([]float64{1, 2}, 6)
	s := Solve(p)
	if s.Status != Optimal || !near(s.Obj, 21) || !near(s.X[0], 3) || !near(s.X[1], 1.5) {
		t.Fatalf("sol: %+v", s)
	}
}

func TestSolveWithEquality(t *testing.T) {
	// max x + y s.t. x + y == 5, x <= 3 -> obj 5.
	p := &Problem{Obj: []float64{1, 1}}
	p.AddEQ([]float64{1, 1}, 5)
	p.AddLE([]float64{1, 0}, 3)
	s := Solve(p)
	if s.Status != Optimal || !near(s.Obj, 5) {
		t.Fatalf("sol: %+v", s)
	}
}

func TestSolveWithGE(t *testing.T) {
	// max -x (i.e. minimize x) s.t. x >= 2.5 -> x = 2.5.
	p := &Problem{Obj: []float64{-1}}
	p.AddGE([]float64{1}, 2.5)
	s := Solve(p)
	if s.Status != Optimal || !near(s.X[0], 2.5) {
		t.Fatalf("sol: %+v", s)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{Obj: []float64{1}}
	p.AddLE([]float64{1}, 1)
	p.AddGE([]float64{1}, 2)
	s := Solve(p)
	if s.Status != Infeasible {
		t.Fatalf("sol: %+v", s)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{Obj: []float64{1, 0}}
	p.AddGE([]float64{1, 0}, 1)
	s := Solve(p)
	if s.Status != Unbounded {
		t.Fatalf("sol: %+v", s)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -1 with x,y>=0, max x s.t. also y <= 3 -> x = 2.
	p := &Problem{Obj: []float64{1, 0}}
	p.AddLE([]float64{1, -1}, -1)
	p.AddLE([]float64{0, 1}, 3)
	s := Solve(p)
	if s.Status != Optimal || !near(s.X[0], 2) {
		t.Fatalf("sol: %+v", s)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// A classically degenerate problem; Bland's rule must terminate.
	p := &Problem{Obj: []float64{0.75, -150, 0.02, -6}}
	p.AddLE([]float64{0.25, -60, -0.04, 9}, 0)
	p.AddLE([]float64{0.5, -90, -0.02, 3}, 0)
	p.AddLE([]float64{0, 0, 1, 0}, 1)
	s := Solve(p)
	if s.Status != Optimal || !near(s.Obj, 0.05) {
		t.Fatalf("sol: %+v", s)
	}
}

func TestSolveMIPKnapsack(t *testing.T) {
	// 0/1 knapsack: values 10, 13, 7; weights 4, 6, 3; cap 9.
	// Best integer: items 1+3 = 17 (weight 7) or 2+3 = 20 (weight 9). -> 20.
	p := &Problem{
		Obj:     []float64{10, 13, 7},
		Integer: []bool{true, true, true},
	}
	p.AddLE([]float64{4, 6, 3}, 9)
	p.AddLE([]float64{1, 0, 0}, 1)
	p.AddLE([]float64{0, 1, 0}, 1)
	p.AddLE([]float64{0, 0, 1}, 1)
	s := SolveMIP(p)
	if s.Status != Optimal || !near(s.Obj, 20) {
		t.Fatalf("sol: %+v", s)
	}
}

func TestSolveMIPMatchesRelaxationWhenIntegral(t *testing.T) {
	p := &Problem{Obj: []float64{1, 1}, Integer: []bool{true, true}}
	p.AddLE([]float64{1, 0}, 3)
	p.AddLE([]float64{0, 1}, 4)
	s := SolveMIP(p)
	if s.Status != Optimal || !near(s.Obj, 7) {
		t.Fatalf("sol: %+v", s)
	}
}

func TestSolveMIPForcesIntegrality(t *testing.T) {
	// max x s.t. 2x <= 5 -> LP 2.5, MIP 2.
	p := &Problem{Obj: []float64{1}, Integer: []bool{true}}
	p.AddLE([]float64{2}, 5)
	s := SolveMIP(p)
	if s.Status != Optimal || !near(s.Obj, 2) {
		t.Fatalf("sol: %+v", s)
	}
}

// Property: for random LE-only problems with non-negative data, the
// simplex solution is feasible and at least as good as any of a set of
// random feasible points.
func TestSolveFeasibilityAndDominanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := &Problem{Obj: make([]float64, n)}
		for j := range p.Obj {
			p.Obj[j] = rng.Float64() * 10
		}
		for i := 0; i < m; i++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = rng.Float64() * 5
			}
			coef[rng.Intn(n)] += 1 // keep problem bounded-ish
			p.AddLE(coef, 1+rng.Float64()*20)
		}
		// Also bound every variable to guarantee boundedness.
		for j := 0; j < n; j++ {
			coef := make([]float64, n)
			coef[j] = 1
			p.AddLE(coef, 50)
		}
		s := Solve(p)
		if s.Status != Optimal {
			return false
		}
		// Feasibility.
		for _, con := range p.Cons {
			dot := 0.0
			for j, c := range con.Coef {
				dot += c * s.X[j]
			}
			if dot > con.RHS+1e-6 {
				return false
			}
		}
		for _, xi := range s.X {
			if xi < -1e-9 {
				return false
			}
		}
		// Dominance over random feasible points (scaled to feasibility).
		for trial := 0; trial < 20; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 5
			}
			scale := 1.0
			for _, con := range p.Cons {
				dot := 0.0
				for j, c := range con.Coef {
					dot += c * x[j]
				}
				if dot > con.RHS && dot > 0 {
					s2 := con.RHS / dot
					if s2 < scale {
						scale = s2
					}
				}
			}
			obj := 0.0
			for j := range x {
				obj += p.Obj[j] * x[j] * scale
			}
			if obj > s.Obj+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRelationAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("relation strings")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("status strings")
	}
}
