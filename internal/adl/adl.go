// Package adl implements the ARGO Architecture Description Language
// (paper §II-A): a model-based description of the target multi-core
// platform carrying exactly the information the tool-chain needs to
// compute WCETs — processors, scratchpads, shared memory, and the
// interconnect with its arbitration policy.
//
// Platforms follow the predictability guidelines of paper §III-B:
// time-predictable cores, scratchpads instead of caches, a minimal set of
// shared resources, a predictable interconnect with known worst-case
// grant and transfer delays, and full timing compositionality.
//
// Descriptions are plain data, serializable to JSON, with two built-in
// reference platforms modelled after the project's targets: a Recore
// Xentium-style DSP many-core and a KIT Leon3-style tile architecture
// with an invasive-NoC-style mesh interconnect.
package adl

import (
	"encoding/json"
	"fmt"
)

// ArbitrationKind selects the shared-memory arbitration policy.
type ArbitrationKind string

// Supported arbitration policies.
const (
	// ArbRoundRobin grants contenders in round-robin order: an access
	// waits at most (contenders-1) slots before being served.
	ArbRoundRobin ArbitrationKind = "round-robin"
	// ArbTDM is time-division multiplexing with one fixed slot per core:
	// an access waits at most a full period regardless of actual load
	// (fully composable, more pessimistic under low contention).
	ArbTDM ArbitrationKind = "tdm"
)

// SPM describes a core-private scratchpad memory.
type SPM struct {
	SizeBytes     int `json:"size_bytes"`
	LatencyCycles int `json:"latency_cycles"`
}

// Core describes one time-predictable processing core.
type Core struct {
	ID   int    `json:"id"`
	Kind string `json:"kind"` // e.g. "xentium", "leon3"
	// OpCycles is the number of cycles one abstract ALU-operation unit
	// takes (the IR cost model counts op units; this scales them).
	OpCycles int `json:"op_cycles"`
	SPM      SPM `json:"spm"`
	// Tile is the (x, y) position on the NoC mesh, if the platform uses
	// one; ignored for bus platforms.
	TileX int `json:"tile_x"`
	TileY int `json:"tile_y"`
}

// SharedMemory describes the shared global memory.
type SharedMemory struct {
	SizeBytes int `json:"size_bytes"`
	// AccessCycles is the isolated (contention-free) latency of one
	// element access once the interconnect grant is held.
	AccessCycles int `json:"access_cycles"`
}

// Bus describes a shared-bus interconnect.
type Bus struct {
	Arbitration ArbitrationKind `json:"arbitration"`
	// SlotCycles is the arbitration slot length (cycles held per grant).
	SlotCycles int `json:"slot_cycles"`
}

// NoCSpec describes a 2-D mesh network-on-chip with weighted-round-robin
// router arbitration (after Heißwolf/König/Becker, ref [12] of the paper).
type NoCSpec struct {
	Width  int `json:"width"`
	Height int `json:"height"`
	// LinkCycles is the per-hop link traversal latency in cycles/flit.
	LinkCycles int `json:"link_cycles"`
	// RouterCycles is the per-hop router pipeline latency.
	RouterCycles int `json:"router_cycles"`
	// FlitBytes is the payload per flit.
	FlitBytes int `json:"flit_bytes"`
	// WRRWeight is the default weighted-round-robin weight per flow.
	WRRWeight int `json:"wrr_weight"`
	// MaxPacketFlits bounds packet size (segmentation above this).
	MaxPacketFlits int `json:"max_packet_flits"`
}

// DMA describes the scratchpad DMA engine used to stage buffers.
type DMA struct {
	SetupCycles   int     `json:"setup_cycles"`
	CyclesPerByte float64 `json:"cycles_per_byte"`
}

// Platform is a complete ADL platform description.
type Platform struct {
	Name   string       `json:"name"`
	Cores  []Core       `json:"cores"`
	Shared SharedMemory `json:"shared_memory"`
	Bus    *Bus         `json:"bus,omitempty"`
	NoC    *NoCSpec     `json:"noc,omitempty"`
	DMA    DMA          `json:"dma"`
}

// NumCores returns the number of cores.
func (p *Platform) NumCores() int { return len(p.Cores) }

// Validate checks internal consistency of the description.
func (p *Platform) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("adl: platform has no name")
	}
	if len(p.Cores) == 0 {
		return fmt.Errorf("adl: platform %q has no cores", p.Name)
	}
	seen := map[int]bool{}
	for i, c := range p.Cores {
		if c.ID != i {
			return fmt.Errorf("adl: core %d has id %d (ids must be dense, in order)", i, c.ID)
		}
		if seen[c.ID] {
			return fmt.Errorf("adl: duplicate core id %d", c.ID)
		}
		seen[c.ID] = true
		if c.OpCycles <= 0 {
			return fmt.Errorf("adl: core %d has non-positive op_cycles", c.ID)
		}
		if c.SPM.SizeBytes < 0 || (c.SPM.SizeBytes > 0 && c.SPM.LatencyCycles <= 0) {
			return fmt.Errorf("adl: core %d has inconsistent SPM spec", c.ID)
		}
	}
	if p.Shared.AccessCycles <= 0 {
		return fmt.Errorf("adl: shared memory access_cycles must be positive")
	}
	if (p.Bus == nil) == (p.NoC == nil) {
		return fmt.Errorf("adl: platform must have exactly one of bus or noc")
	}
	if p.Bus != nil {
		if p.Bus.Arbitration != ArbRoundRobin && p.Bus.Arbitration != ArbTDM {
			return fmt.Errorf("adl: unknown arbitration %q", p.Bus.Arbitration)
		}
		if p.Bus.SlotCycles <= 0 {
			return fmt.Errorf("adl: bus slot_cycles must be positive")
		}
	}
	if p.NoC != nil {
		n := p.NoC
		if n.Width <= 0 || n.Height <= 0 {
			return fmt.Errorf("adl: noc mesh dimensions must be positive")
		}
		if n.Width*n.Height < len(p.Cores) {
			return fmt.Errorf("adl: %dx%d mesh cannot host %d cores", n.Width, n.Height, len(p.Cores))
		}
		if n.LinkCycles <= 0 || n.RouterCycles <= 0 || n.FlitBytes <= 0 || n.WRRWeight <= 0 || n.MaxPacketFlits <= 0 {
			return fmt.Errorf("adl: noc parameters must be positive")
		}
		for _, c := range p.Cores {
			if c.TileX < 0 || c.TileX >= n.Width || c.TileY < 0 || c.TileY >= n.Height {
				return fmt.Errorf("adl: core %d tile (%d,%d) outside %dx%d mesh", c.ID, c.TileX, c.TileY, n.Width, n.Height)
			}
		}
	}
	if p.DMA.SetupCycles < 0 || p.DMA.CyclesPerByte < 0 {
		return fmt.Errorf("adl: dma costs must be non-negative")
	}
	return nil
}

// MarshalJSON round-trips through a plain struct (Platform has no cycles).
// Encode serializes the platform description.
func Encode(p *Platform) ([]byte, error) { return json.MarshalIndent(p, "", "  ") }

// Decode parses a platform description and validates it.
func Decode(data []byte) (*Platform, error) {
	var p Platform
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("adl: %v", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// --- timing model -----------------------------------------------------------

// SharedAccessIsolated returns the contention-free worst-case latency of
// one shared-memory element access from core id (grant assumed immediate).
func (p *Platform) SharedAccessIsolated(coreID int) int {
	lat := p.Shared.AccessCycles
	if p.NoC != nil {
		// Shared memory sits at tile (0, 0); add the round-trip
		// through the mesh.
		c := p.Cores[coreID]
		hops := c.TileX + c.TileY
		lat += 2 * hops * (p.NoC.LinkCycles + p.NoC.RouterCycles)
	}
	return lat
}

// MaxSharedAccessIsolated returns the maximum isolated shared access
// latency over all cores (used where the core is not yet known).
func (p *Platform) MaxSharedAccessIsolated() int {
	m := 0
	for id := range p.Cores {
		if l := p.SharedAccessIsolated(id); l > m {
			m = l
		}
	}
	return m
}

// AccessInterferenceDelay bounds the extra delay per shared access when
// `contenders` other cores may access the shared resource concurrently
// (paper §II-D: the number of contenders is known statically after
// scheduling, which is what keeps this bound from being pessimistic).
func (p *Platform) AccessInterferenceDelay(contenders int) int {
	if p.Bus != nil && p.Bus.Arbitration == ArbTDM {
		// TDM ignores actual contention entirely: grants happen only at
		// slot starts, so every request may wait a full period — even a
		// core running alone (fully composable, load-independent, and
		// correspondingly pessimistic at low contention).
		return len(p.Cores) * p.Bus.SlotCycles
	}
	if contenders <= 0 {
		return 0
	}
	if p.Bus != nil {
		return contenders * p.Bus.SlotCycles
	}
	if p.NoC != nil {
		// WRR arbitration: each contender may inject up to WRRWeight
		// flits ahead of ours at each of the (worst-case) shared-memory
		// router.
		return contenders * p.NoC.WRRWeight * p.NoC.LinkCycles
	}
	return 0
}

// DMACycles bounds a DMA transfer of n bytes between shared memory and a
// core's scratchpad.
func (p *Platform) DMACycles(coreID, bytes int) int {
	if bytes <= 0 {
		return 0
	}
	cycles := p.DMA.SetupCycles + int(float64(bytes)*p.DMA.CyclesPerByte)
	if p.NoC != nil {
		c := p.Cores[coreID]
		hops := c.TileX + c.TileY
		cycles += hops * (p.NoC.LinkCycles + p.NoC.RouterCycles)
	} else {
		cycles += p.Shared.AccessCycles
	}
	return cycles
}
