package adl

import "fmt"

// XentiumPlatform models a Recore Xentium-style DSP many-core: a flexible
// bus-based platform with per-core scratchpads and a round-robin shared
// memory bus (paper §IV-C). n is the core count.
func XentiumPlatform(n int) *Platform {
	cores := make([]Core, n)
	for i := range cores {
		cores[i] = Core{
			ID:       i,
			Kind:     "xentium",
			OpCycles: 1,
			SPM:      SPM{SizeBytes: 64 << 10, LatencyCycles: 2},
		}
	}
	p := &Platform{
		Name:   fmt.Sprintf("recore-xentium%d", n),
		Cores:  cores,
		Shared: SharedMemory{SizeBytes: 16 << 20, AccessCycles: 18},
		Bus:    &Bus{Arbitration: ArbRoundRobin, SlotCycles: 8},
		DMA:    DMA{SetupCycles: 40, CyclesPerByte: 0.25},
	}
	if err := p.Validate(); err != nil {
		panic("adl.XentiumPlatform: " + err.Error())
	}
	return p
}

// XentiumTDMPlatform is the Xentium platform with TDM bus arbitration
// (fully composable variant, used by the arbitration ablation).
func XentiumTDMPlatform(n int) *Platform {
	p := XentiumPlatform(n)
	p.Name = fmt.Sprintf("recore-xentium%d-tdm", n)
	p.Bus.Arbitration = ArbTDM
	if err := p.Validate(); err != nil {
		panic("adl.XentiumTDMPlatform: " + err.Error())
	}
	return p
}

// Leon3TilePlatform models a KIT-style tile architecture: Leon3-class
// cores on a width x height mesh with an invasive-NoC-style
// weighted-round-robin interconnect providing latency guarantees
// (paper §IV-C, ref [12]). Cores fill the mesh row-major; tile (0, 0)
// hosts the shared memory controller.
func Leon3TilePlatform(width, height int) *Platform {
	n := width * height
	cores := make([]Core, n)
	for i := range cores {
		cores[i] = Core{
			ID:       i,
			Kind:     "leon3",
			OpCycles: 2, // simpler in-order core: 2 cycles per op unit
			SPM:      SPM{SizeBytes: 32 << 10, LatencyCycles: 1},
			TileX:    i % width,
			TileY:    i / width,
		}
	}
	p := &Platform{
		Name:   fmt.Sprintf("kit-leon3-tile%dx%d", width, height),
		Cores:  cores,
		Shared: SharedMemory{SizeBytes: 64 << 20, AccessCycles: 12},
		NoC: &NoCSpec{
			Width: width, Height: height,
			LinkCycles: 2, RouterCycles: 3,
			FlitBytes: 8, WRRWeight: 4, MaxPacketFlits: 16,
		},
		DMA: DMA{SetupCycles: 60, CyclesPerByte: 0.5},
	}
	if err := p.Validate(); err != nil {
		panic("adl.Leon3TilePlatform: " + err.Error())
	}
	return p
}

// HeteroPlatform models a heterogeneous bus-based platform in the spirit
// of the "IP-agnostic" Recore many-core (paper §IV-C): fast DSP-class
// cores (1 cycle/op, large SPM) next to slow control-class cores
// (3 cycles/op, small SPM). The WCET-aware mapper must exploit the
// per-core bounds.
func HeteroPlatform(fast, slow int) *Platform {
	n := fast + slow
	cores := make([]Core, n)
	for i := 0; i < fast; i++ {
		cores[i] = Core{
			ID: i, Kind: "xentium", OpCycles: 1,
			SPM: SPM{SizeBytes: 64 << 10, LatencyCycles: 2},
		}
	}
	for i := fast; i < n; i++ {
		cores[i] = Core{
			ID: i, Kind: "arm-m", OpCycles: 3,
			SPM: SPM{SizeBytes: 16 << 10, LatencyCycles: 2},
		}
	}
	p := &Platform{
		Name:   fmt.Sprintf("hetero-%df%ds", fast, slow),
		Cores:  cores,
		Shared: SharedMemory{SizeBytes: 16 << 20, AccessCycles: 18},
		Bus:    &Bus{Arbitration: ArbRoundRobin, SlotCycles: 8},
		DMA:    DMA{SetupCycles: 40, CyclesPerByte: 0.25},
	}
	if err := p.Validate(); err != nil {
		panic("adl.HeteroPlatform: " + err.Error())
	}
	return p
}

// Builtin returns a built-in platform by name, or nil. Recognized names:
// "xentium<N>", "xentium<N>-tdm", "leon3-<W>x<H>", "hetero-<F>f<S>s".
func Builtin(name string) *Platform {
	var n, w, h, f, s int
	if _, err := fmt.Sscanf(name, "xentium%d-tdm", &n); err == nil && n > 0 {
		return XentiumTDMPlatform(n)
	}
	if _, err := fmt.Sscanf(name, "xentium%d", &n); err == nil && n > 0 {
		return XentiumPlatform(n)
	}
	if _, err := fmt.Sscanf(name, "leon3-%dx%d", &w, &h); err == nil && w > 0 && h > 0 {
		return Leon3TilePlatform(w, h)
	}
	if _, err := fmt.Sscanf(name, "hetero-%df%ds", &f, &s); err == nil && f >= 0 && s >= 0 && f+s > 0 {
		return HeteroPlatform(f, s)
	}
	return nil
}

// BuiltinNames lists example names accepted by Builtin, for help output.
func BuiltinNames() []string {
	return []string{"xentium1", "xentium2", "xentium4", "xentium8", "xentium16",
		"xentium4-tdm", "leon3-2x2", "leon3-4x4", "hetero-2f2s"}
}
