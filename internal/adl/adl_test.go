package adl

import (
	"strings"
	"testing"
)

func TestBuiltinPlatformsValidate(t *testing.T) {
	for _, name := range BuiltinNames() {
		p := Builtin(name)
		if p == nil {
			t.Fatalf("Builtin(%q) = nil", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBuiltinNameParsing(t *testing.T) {
	if p := Builtin("xentium8"); p == nil || p.NumCores() != 8 || p.Bus == nil || p.Bus.Arbitration != ArbRoundRobin {
		t.Fatalf("xentium8: %+v", Builtin("xentium8"))
	}
	if p := Builtin("xentium4-tdm"); p == nil || p.Bus.Arbitration != ArbTDM {
		t.Fatal("xentium4-tdm arbitration")
	}
	if p := Builtin("leon3-4x4"); p == nil || p.NumCores() != 16 || p.NoC == nil {
		t.Fatal("leon3-4x4")
	}
	if Builtin("unknown-platform") != nil {
		t.Fatal("unknown name should return nil")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := Leon3TilePlatform(2, 2)
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.NumCores() != p.NumCores() || q.NoC == nil || q.NoC.Width != 2 {
		t.Fatalf("round trip: %+v", q)
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	cases := []string{
		`{}`,
		`{"name":"x"}`,
		`{"name":"x","cores":[{"id":0,"op_cycles":1}],"shared_memory":{"access_cycles":10}}`,                                                     // no bus/noc
		`{"name":"x","cores":[{"id":0,"op_cycles":0}],"shared_memory":{"access_cycles":10},"bus":{"arbitration":"round-robin","slot_cycles":4}}`, // op_cycles 0
		`{"name":"x","cores":[{"id":1,"op_cycles":1}],"shared_memory":{"access_cycles":10},"bus":{"arbitration":"round-robin","slot_cycles":4}}`, // non-dense id
		`not json`,
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c)); err == nil {
			t.Errorf("Decode(%q) should fail", c)
		}
	}
}

func TestValidateArbitrationKinds(t *testing.T) {
	p := XentiumPlatform(2)
	p.Bus.Arbitration = "fifo"
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "arbitration") {
		t.Fatalf("err = %v", err)
	}
}

func TestSharedAccessIsolatedBus(t *testing.T) {
	p := XentiumPlatform(4)
	for id := range p.Cores {
		if got := p.SharedAccessIsolated(id); got != p.Shared.AccessCycles {
			t.Fatalf("core %d: %d", id, got)
		}
	}
}

func TestSharedAccessIsolatedNoCGrowsWithDistance(t *testing.T) {
	p := Leon3TilePlatform(4, 4)
	near := p.SharedAccessIsolated(0) // tile (0,0)
	far := p.SharedAccessIsolated(15) // tile (3,3)
	if far <= near {
		t.Fatalf("far %d should exceed near %d", far, near)
	}
	if m := p.MaxSharedAccessIsolated(); m != far {
		t.Fatalf("max %d, want %d", m, far)
	}
}

func TestAccessInterferenceDelayRoundRobin(t *testing.T) {
	p := XentiumPlatform(4)
	if d := p.AccessInterferenceDelay(0); d != 0 {
		t.Fatalf("no contenders: %d", d)
	}
	d1 := p.AccessInterferenceDelay(1)
	d3 := p.AccessInterferenceDelay(3)
	if d1 <= 0 || d3 != 3*d1 {
		t.Fatalf("rr delays: %d %d", d1, d3)
	}
}

func TestAccessInterferenceDelayTDMIsContentionIndependent(t *testing.T) {
	p := XentiumTDMPlatform(4)
	d1 := p.AccessInterferenceDelay(1)
	d3 := p.AccessInterferenceDelay(3)
	if d1 != d3 {
		t.Fatalf("tdm should not depend on contenders: %d vs %d", d1, d3)
	}
	if d1 != 4*p.Bus.SlotCycles {
		t.Fatalf("tdm delay: %d", d1)
	}
}

func TestTDMMorePessimisticAtLowContention(t *testing.T) {
	rr := XentiumPlatform(8)
	tdm := XentiumTDMPlatform(8)
	if rr.AccessInterferenceDelay(1) >= tdm.AccessInterferenceDelay(1) {
		t.Fatal("RR should beat TDM when contention is low")
	}
}

func TestDMACycles(t *testing.T) {
	p := XentiumPlatform(2)
	if d := p.DMACycles(0, 0); d != 0 {
		t.Fatalf("zero bytes: %d", d)
	}
	small := p.DMACycles(0, 64)
	big := p.DMACycles(0, 4096)
	if big <= small || small <= p.DMA.SetupCycles {
		t.Fatalf("dma scaling: %d %d", small, big)
	}
	// NoC platform: farther tiles pay more.
	q := Leon3TilePlatform(4, 4)
	if q.DMACycles(15, 1024) <= q.DMACycles(0, 1024) {
		t.Fatal("noc dma should grow with distance")
	}
}

func TestMeshCapacityValidation(t *testing.T) {
	p := Leon3TilePlatform(2, 2)
	p.Cores = append(p.Cores, Core{ID: 4, Kind: "leon3", OpCycles: 1, TileX: 0, TileY: 0})
	if err := p.Validate(); err == nil {
		t.Fatal("5 cores on a 2x2 mesh must fail validation")
	}
}

func TestHeteroPlatform(t *testing.T) {
	p := Builtin("hetero-2f2s")
	if p == nil || p.NumCores() != 4 {
		t.Fatalf("hetero-2f2s: %+v", p)
	}
	if p.Cores[0].OpCycles >= p.Cores[3].OpCycles {
		t.Fatal("fast cores must be faster than slow cores")
	}
	if p.Cores[0].SPM.SizeBytes <= p.Cores[3].SPM.SizeBytes {
		t.Fatal("fast cores carry the larger scratchpads")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
