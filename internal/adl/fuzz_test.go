package adl

import (
	"bytes"
	"testing"
)

// FuzzADLPlatform asserts the platform loader's robustness contract on
// arbitrary bytes: Decode never panics — garbage is rejected with an
// error — and every accepted description is internally consistent
// (Validate holds) and stable under Encode∘Decode.
//
// Run the full fuzzer with: go test -fuzz=FuzzADLPlatform ./internal/adl
func FuzzADLPlatform(f *testing.F) {
	for _, name := range BuiltinNames() {
		enc, err := Encode(Builtin(name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	for _, s := range []string{
		"", "null", "{}", "[]", "42", `"xentium4"`,
		`{"name":"p"}`,
		`{"name":"p","cores":[]}`,
		`{"name":"p","cores":[{"id":0,"op_cycles":1}],"shared":{"access_cycles":1}}`,
		`{"name":"p","cores":[{"id":0,"op_cycles":-1}]}`,
		`{"name":"p","cores":[{"id":7,"op_cycles":1}]}`,
		`{"name":"p","cores":[{"id":0,"op_cycles":1}],"noc":{"width":-1}}`,
		"{\"name\":\"\xff\"}",
		"{", `{"cores":`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // rejection is fine; panicking is the bug
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid platform: %v", verr)
		}
		enc, err := Encode(p)
		if err != nil {
			t.Fatalf("accepted platform does not re-encode: %v", err)
		}
		p2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded platform does not decode: %v\n%s", err, enc)
		}
		enc2, err := Encode(p2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("Encode∘Decode not stable:\n--- first\n%s\n--- second\n%s", enc, enc2)
		}
	})
}
