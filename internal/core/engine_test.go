package core

import (
	"strings"
	"testing"

	"argo/internal/adl"
	"argo/internal/usecases"
)

// TestWCETEngineModes pins the compilation-level engine contract over
// every use case:
//
//   - "both" produces bit-identical bounds to the default "ipet"
//     selection (IPET stays the primary engine; the exact engine only
//     cross-checks), so enabling the cross-check can never change what
//     ships.
//   - "mc" compiles successfully and its sequential bound never exceeds
//     the IPET one (the exact engine is at most as pessimistic on every
//     region).
func TestWCETEngineModes(t *testing.T) {
	plat := adl.Builtin("xentium4")
	for _, u := range usecases.All() {
		compile := func(engine string) *Artifacts {
			t.Helper()
			opt := DefaultOptions(u.Entry, u.Args, plat)
			opt.WCETEngine = engine
			art, err := CompileSource(u.Source, opt)
			if err != nil {
				t.Fatalf("%s engine %q: %v", u.Name, engine, err)
			}
			return art
		}
		ipet := compile("ipet")
		both := compile("both")
		if ipet.Bound() != both.Bound() || ipet.SequentialWCET != both.SequentialWCET ||
			ipet.System.Makespan != both.System.Makespan {
			t.Fatalf("%s: both-mode bounds diverge from ipet: bound %d/%d seq %d/%d sys %d/%d",
				u.Name, ipet.Bound(), both.Bound(), ipet.SequentialWCET, both.SequentialWCET,
				ipet.System.Makespan, both.System.Makespan)
		}
		for id, b := range ipet.System.TaskBound {
			if both.System.TaskBound[id] != b {
				t.Fatalf("%s task %d: both-mode bound %d != ipet %d", u.Name, id, both.System.TaskBound[id], b)
			}
		}
		mc := compile("mc")
		if mc.SequentialWCET > ipet.SequentialWCET {
			t.Fatalf("%s: mc sequential bound %d exceeds ipet %d", u.Name, mc.SequentialWCET, ipet.SequentialWCET)
		}
	}
}

// TestWCETEngineUnknownRejected: a bad Options.WCETEngine fails the
// compilation before any pass runs, naming the valid selectors.
func TestWCETEngineUnknownRejected(t *testing.T) {
	u := usecases.ByName("weaa")
	opt := DefaultOptions(u.Entry, u.Args, adl.Builtin("xentium2"))
	opt.WCETEngine = "bogus"
	_, err := CompileSource(u.Source, opt)
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	for _, want := range []string{"bogus", "ipet", "mc", "both"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}
