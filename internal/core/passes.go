package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"argo/internal/adl"
	"argo/internal/fault"
	"argo/internal/htg"
	"argo/internal/ir"
	"argo/internal/par"
	"argo/internal/pass"
	"argo/internal/sched"
	"argo/internal/scil"
	"argo/internal/sim"
	"argo/internal/syswcet"
	"argo/internal/transform"
	"argo/internal/wcet"
)

// This file binds the generic pass manager (internal/pass) to the
// concrete ARGO pipeline: it declares the typed artifact slots, lifts
// the transformation registry into passes, and defines the structural
// passes (HTG extraction, scheduling, parallel program construction,
// validation) together with their cache contracts.
//
// Every pass in the ladder is cacheable; what differs is the freeze
// discipline each output needs:
//
//   - Transformation passes snapshot a deep clone of the rewritten
//     program (re-cloned again on restore), so no cached state ever
//     aliases a live pipeline's IR.
//   - The schedule pass's input (task WCET vectors, dependence volumes,
//     platform, policy) and output (*sched.Schedule, *syswcet.Result)
//     are pointer-free value data, deep-copied on both freeze and thaw.
//   - The structural passes (build-htg, annotate, coarsen, sched-input,
//     par-build) produce artifacts that hold live *ir.Var/ir.Stmt
//     pointers. They freeze through the remap-on-restore snapshot codec
//     (ir.SnapshotIndex/ir.SnapshotTable: vars by registration index,
//     stmts by traversal order — the transformSnap trick generalized)
//     and thaw against whichever equal-fingerprint program the
//     restoring pipeline holds.
//
// The structural fingerprints lean on one determinism chain: given the
// IR content (including variable storage, which wcet.FingerprintProgram
// covers), the canonical platform encoding, the coarsening bound, and
// the scheduling policy, every pass of the ladder is a deterministic
// function — so those four values content-address each pass's output.
// Feedback rounds key distinctly for free: par-build's demotions mutate
// variable storage between rounds, which changes the IR fingerprint,
// and a restored par-build replays the identical mutations (see
// par.Snapshot.Thaw), so cached replays reproduce the round sequence
// bit-identically.

// Typed artifact slots of the pipeline.
var (
	keyModel = pass.NewKey[*scil.Program]("scil")
	keyIR    = pass.NewKey[*ir.Program]("ir")
	// keyReport accumulates the merged transformation report;
	// keyDelta holds the contribution of the transform pass that just
	// ran (scratch slot consumed by Snapshot).
	keyReport = pass.NewKey[*transform.Report]("transform-report")
	keyDelta  = pass.NewKey[*transform.Report]("transform-delta")
	keyModels = pass.NewKey[[]wcet.CostModel]("cost-models")
	// keyCanon is the canonical ADL encoding of the target platform
	// (part of the schedule pass's cache key).
	keyCanon = pass.NewKey[string]("platform-canon")
	keyBase  = pass.NewKey[*graphCell]("htg")
	keyGraph = pass.NewKey[*graphCell]("htg-annotated")
	keyInput = pass.NewKey[*sched.Input]("sched-input")
	keySched = pass.NewKey[*sched.Schedule]("schedule")
	keySys   = pass.NewKey[*syswcet.Result]("syswcet")
	keyPar   = pass.NewKey[*par.Program]("par-program")
	keySeq   = pass.NewKey[int64]("seq-wcet")
	// keyEngine is the resolved WCET engine selection. Its Spec is part
	// of every structural fingerprint: engines legitimately produce
	// different bounds, and "both" must key separately from "ipet" so a
	// cached annotate can never skip the cross-check.
	keyEngine = pass.NewKey[wcet.Selection]("wcet-engine")
)

func dumpIR(c *pass.Context) string { return pass.Need(c, keyIR).Dump() }

// irMemo caches, per pipeline execution, the derived views of the live
// IR that the cache machinery rebuilds constantly: its content
// fingerprint (one full-program walk per structural-pass key without
// the memo) and the snapshot codec's freeze index / thaw table (one
// statement traversal per freeze/restore). All three are pure functions
// of the program's current state, so the memo is keyed to the program
// pointer AND explicitly invalidated by every pass that mutates the
// program in place (transform runs, label-loops, par-build's storage
// side effect on both Run and Restore) — the pointer check alone cannot
// see in-place mutation.
type irMemo struct {
	prog *ir.Program
	fp   wcet.Fingerprint
	idx  *ir.SnapshotIndex
	tab  *ir.SnapshotTable
}

var keyIRMemo = pass.NewKey[*irMemo]("ir-memo")

func irMemoOf(c *pass.Context) *irMemo {
	prog := pass.Need(c, keyIR)
	if m, ok := pass.Get(c, keyIRMemo); ok && m != nil && m.prog == prog {
		return m
	}
	m := &irMemo{prog: prog, fp: wcet.FingerprintProgram(prog)}
	pass.Put(c, keyIRMemo, m)
	return m
}

func irMemoIndex(c *pass.Context) *ir.SnapshotIndex {
	m := irMemoOf(c)
	if m.idx == nil {
		m.idx = ir.NewSnapshotIndex(m.prog)
	}
	return m.idx
}

func irMemoTable(c *pass.Context) *ir.SnapshotTable {
	m := irMemoOf(c)
	if m.tab == nil {
		m.tab = ir.NewSnapshotTable(m.prog)
	}
	return m.tab
}

// invalidateIRMemo must be called by any code that mutates the live IR
// program in place; the next memo access recomputes against the mutated
// state.
func invalidateIRMemo(c *pass.Context) { pass.Put(c, keyIRMemo, nil) }

// graphCell holds a task graph artifact, optionally as a deferred thaw.
// On a fully warm compile, build-htg's and annotate's restores are
// overwritten by the next pass's restore before any Run reads them —
// deferring the thaw to first use means those intermediate restores
// never pay it, and only the ladder's final graph is materialized.
// Deferral is sound: thaw resolves variables and statements purely by
// position, which later in-place IR mutations (par-build's storage side
// effect) don't disturb. The cell memoizes, so every reader sees one
// graph instance, exactly as with an eager Put.
type graphCell struct {
	once sync.Once
	thaw func() *htg.Graph
	g    *htg.Graph
}

func liveGraph(g *htg.Graph) *graphCell           { return &graphCell{g: g} }
func lazyGraph(thaw func() *htg.Graph) *graphCell { return &graphCell{thaw: thaw} }

func (gc *graphCell) graph() *htg.Graph {
	gc.once.Do(func() {
		if gc.thaw != nil {
			gc.g = gc.thaw()
		}
	})
	return gc.g
}

// baseGraph / annGraph materialize the structural and annotated graph
// artifacts.
func baseGraph(c *pass.Context) *htg.Graph { return pass.Need(c, keyBase).graph() }
func annGraph(c *pass.Context) *htg.Graph  { return pass.Need(c, keyGraph).graph() }

// --- front-end passes -------------------------------------------------------

func checkPass() *pass.Pass {
	return &pass.Pass{
		Name: "check", Input: "scil", Output: "scil",
		Run: func(c *pass.Context) error {
			if errs := scil.Check(pass.Need(c, keyModel), scil.CheckWCET); len(errs) > 0 {
				return fmt.Errorf("model check failed: %v", errs[0])
			}
			return nil
		},
	}
}

func lowerPass(entry string, args []ir.ArgSpec) *pass.Pass {
	return &pass.Pass{
		Name: "lower", Input: "scil", Output: "ir",
		Run: func(c *pass.Context) error {
			prog, err := ir.Lower(pass.Need(c, keyModel), entry, args)
			if err != nil {
				return err
			}
			pass.Put(c, keyIR, prog)
			return nil
		},
		Dump: dumpIR,
	}
}

// --- transformation passes --------------------------------------------------

// transformSnap is the frozen result of one cacheable transformation
// pass: the rewritten program (a private clone, re-cloned on thaw) plus
// the pass's report contribution. SPM-promoted variables are stored as
// indices into prog.Vars — Clone preserves registration order, so the
// pointers are rebuilt against whichever clone a thaw produces.
type transformSnap struct {
	prog     *ir.Program
	rep      transform.Report
	promoted []int
	// fp is the content fingerprint of prog, recorded at freeze time.
	// Clone preserves content fingerprints (registration and traversal
	// order are invariant — the same property the whole snapshot codec
	// rests on), so a restore can seed the pipeline's irMemo with it and
	// the next pass's cache key costs no program walk.
	fp wcet.Fingerprint
}

func freezeTransform(live *ir.Program, delta transform.Report, fp wcet.Fingerprint) *transformSnap {
	s := &transformSnap{prog: live.Clone(), rep: delta, fp: fp}
	if n := len(delta.SPM.Promoted); n > 0 {
		idx := make(map[*ir.Var]int, len(live.Vars))
		for i, v := range live.Vars {
			idx[v] = i
		}
		s.promoted = make([]int, n)
		for i, v := range delta.SPM.Promoted {
			j, ok := idx[v]
			if !ok {
				return nil // promoted var not in the table: don't cache
			}
			s.promoted[i] = j
		}
		s.rep.SPM.Promoted = nil
	}
	return s
}

func (s *transformSnap) thaw() (*ir.Program, transform.Report) {
	prog := s.prog.Clone()
	rep := s.rep
	if len(s.promoted) > 0 {
		rep.SPM.Promoted = make([]*ir.Var, len(s.promoted))
		for i, j := range s.promoted {
			rep.SPM.Promoted[i] = prog.Vars[j]
		}
	}
	return prog, rep
}

func transformPasses(tOpt transform.Options, disabled map[string]bool) []*pass.Pass {
	var out []*pass.Pass
	for _, spec := range transform.Plan(tOpt) {
		if disabled[spec.Name] {
			continue
		}
		spec := spec
		out = append(out, &pass.Pass{
			Name: spec.Name, Input: "ir", Output: "ir",
			Run: func(c *pass.Context) error {
				var delta transform.Report
				spec.Run(pass.Need(c, keyIR), tOpt, &delta)
				invalidateIRMemo(c)
				pass.Need(c, keyReport).Merge(delta)
				pass.Put(c, keyDelta, &delta)
				return nil
			},
			Fingerprint: func(c *pass.Context) ([]byte, bool) {
				fp := irMemoOf(c).fp
				return append(fp[:], spec.Params(tOpt)...), true
			},
			Snapshot: func(c *pass.Context) any {
				// irMemoOf also warms the memo for the next pass's
				// Fingerprint (Run just invalidated it).
				s := freezeTransform(pass.Need(c, keyIR), *pass.Need(c, keyDelta), irMemoOf(c).fp)
				if s == nil {
					return nil
				}
				return s
			},
			Restore: func(c *pass.Context, snap any) {
				ts := snap.(*transformSnap)
				prog, delta := ts.thaw()
				pass.Put(c, keyIR, prog)
				pass.Put(c, keyIRMemo, &irMemo{prog: prog, fp: ts.fp})
				pass.Need(c, keyReport).Merge(delta)
			},
			Dump: dumpIR,
		})
	}
	return out
}

// --- structural passes ------------------------------------------------------

// irFingerprint content-addresses the live IR alone (structure, names,
// storage classes, temp counter) — the complete input of build-htg.
func irFingerprint(c *pass.Context) ([]byte, bool) {
	fp := irMemoOf(c).fp
	return fp[:], true
}

// structuralFingerprint content-addresses the structural ladder's input
// chain: the live IR, the canonical platform encoding, the WCET engine
// selection, and any pass-specific tuning values (coarsening bound,
// policy). ok is false when the platform has no canonical encoding.
func structuralFingerprint(c *pass.Context, extras ...uint64) ([]byte, bool) {
	canon := pass.Need(c, keyCanon)
	if canon == "" {
		return nil, false
	}
	spec := pass.Need(c, keyEngine).Spec
	fp := irMemoOf(c).fp
	out := make([]byte, 0, len(fp)+len(canon)+1+len(spec)+1+8*len(extras))
	out = append(out, fp[:]...)
	out = append(out, canon...)
	out = append(out, 0)
	out = append(out, spec...)
	out = append(out, 0)
	var b [8]byte
	for _, e := range extras {
		binary.LittleEndian.PutUint64(b[:], e)
		out = append(out, b[:]...)
	}
	return out, true
}

// freezeGraph / thawGraphInto adapt the htg freeze/thaw forms to the
// pass Snapshot/Restore contract against the live IR.
func freezeGraph(c *pass.Context, g *htg.Graph) any {
	f, ok := g.Freeze(irMemoIndex(c))
	if !ok {
		return nil
	}
	return f
}

func thawGraph(c *pass.Context, snap any) *htg.Graph {
	return snap.(*htg.FrozenGraph).Thaw(irMemoTable(c))
}

func labelLoopsPass() *pass.Pass {
	return &pass.Pass{
		Name: "label-loops", Input: "ir", Output: "ir",
		Run: func(c *pass.Context) error {
			transform.LabelLoops(pass.Need(c, keyIR))
			invalidateIRMemo(c)
			return nil
		},
		Dump: dumpIR,
	}
}

func buildHTGPass() *pass.Pass {
	return &pass.Pass{
		Name: "build-htg", Input: "ir", Output: "htg",
		Run: func(c *pass.Context) error {
			pass.Put(c, keyBase, liveGraph(htg.Build(pass.Need(c, keyIR))))
			return nil
		},
		Fingerprint: irFingerprint,
		Snapshot: func(c *pass.Context) any {
			return freezeGraph(c, baseGraph(c))
		},
		Restore: func(c *pass.Context, snap any) {
			pass.Put(c, keyBase, lazyGraph(func() *htg.Graph { return thawGraph(c, snap) }))
		},
		Dump: func(c *pass.Context) string { return baseGraph(c).Dump() },
	}
}

// --- feedback-loop passes (run once per placement/analysis round) -----------

func annotatePass() *pass.Pass {
	return &pass.Pass{
		Name: "annotate", Input: "htg", Output: "htg-annotated",
		Run: func(c *pass.Context) error {
			// Storage classes change between rounds (demotions), so each
			// round re-annotates a fresh clone of the structural graph.
			g := baseGraph(c).Clone()
			if err := htg.AnnotateWith(g, pass.Need(c, keyModels), pass.Need(c, keyEngine)); err != nil {
				return err
			}
			pass.Put(c, keyGraph, liveGraph(g))
			return nil
		},
		Fingerprint: func(c *pass.Context) ([]byte, bool) {
			return structuralFingerprint(c)
		},
		Snapshot: func(c *pass.Context) any {
			return freezeGraph(c, annGraph(c))
		},
		Restore: func(c *pass.Context, snap any) {
			pass.Put(c, keyGraph, lazyGraph(func() *htg.Graph { return thawGraph(c, snap) }))
		},
		Dump: func(c *pass.Context) string { return annGraph(c).Dump() },
	}
}

func coarsenPass(maxTasks int) *pass.Pass {
	return &pass.Pass{
		Name: "coarsen", Input: "htg-annotated", Output: "htg-annotated",
		Run: func(c *pass.Context) error {
			if g := annGraph(c); maxTasks > 0 && len(g.Nodes) > maxTasks {
				g.MergeUntil(maxTasks)
			}
			return nil
		},
		Fingerprint: func(c *pass.Context) ([]byte, bool) {
			return structuralFingerprint(c, uint64(maxTasks))
		},
		Snapshot: func(c *pass.Context) any {
			return freezeGraph(c, annGraph(c))
		},
		Restore: func(c *pass.Context, snap any) {
			pass.Put(c, keyGraph, lazyGraph(func() *htg.Graph { return thawGraph(c, snap) }))
		},
		Dump: func(c *pass.Context) string { return annGraph(c).Dump() },
	}
}

func schedInputPass(platform *adl.Platform, maxTasks int) *pass.Pass {
	return &pass.Pass{
		Name: "sched-input", Input: "htg-annotated", Output: "sched-input",
		Run: func(c *pass.Context) error {
			pass.Put(c, keyInput, sched.FromHTG(annGraph(c), platform))
			return nil
		},
		Fingerprint: func(c *pass.Context) ([]byte, bool) {
			return structuralFingerprint(c, uint64(maxTasks))
		},
		Snapshot: func(c *pass.Context) any {
			// The task/dependence tables are pointer-free value data; the
			// platform is rebound on restore (equal canonical encoding).
			return cloneSchedInput(pass.Need(c, keyInput))
		},
		Restore: func(c *pass.Context, snap any) {
			in := cloneSchedInput(snap.(*sched.Input))
			in.Platform = platform
			pass.Put(c, keyInput, in)
		},
	}
}

// cloneSchedInput deep-copies a scheduling problem (Platform pointer
// shared; callers rebind it as needed).
func cloneSchedInput(in *sched.Input) *sched.Input {
	out := &sched.Input{Platform: in.Platform}
	out.Tasks = make([]sched.Task, len(in.Tasks))
	for i, t := range in.Tasks {
		t.WCET = append([]int64(nil), t.WCET...)
		out.Tasks[i] = t
	}
	out.Deps = append([]sched.Dep(nil), in.Deps...)
	return out
}

// schedSnap is the frozen (schedule, system analysis) pair; both are
// pointer-free value data, deep-copied on freeze and thaw.
type schedSnap struct {
	s   *sched.Schedule
	sys *syswcet.Result
}

func cloneSchedule(s *sched.Schedule) *sched.Schedule {
	c := *s
	c.Placements = append([]sched.Placement(nil), s.Placements...)
	return &c
}

func cloneSysResult(r *syswcet.Result) *syswcet.Result {
	c := *r
	c.Start = append([]int64(nil), r.Start...)
	c.Finish = append([]int64(nil), r.Finish...)
	c.TaskBound = append([]int64(nil), r.TaskBound...)
	c.InterferencePerTask = append([]int64(nil), r.InterferencePerTask...)
	c.Contenders = append([]int(nil), r.Contenders...)
	return &c
}

// fingerprintScheduleInput content-addresses everything the schedule
// pass reads: the canonical platform encoding, the policy, and the full
// task/dependence tables (per-core WCET vectors, shared-access bounds,
// communication volumes).
func fingerprintScheduleInput(in *sched.Input, pol sched.Policy, canon string) ([]byte, bool) {
	if canon == "" {
		return nil, false
	}
	h := sha256.New()
	var b [8]byte
	w64 := func(v uint64) { binary.LittleEndian.PutUint64(b[:], v); h.Write(b[:]) }
	io.WriteString(h, canon)
	h.Write([]byte{0})
	w64(uint64(pol))
	w64(uint64(len(in.Tasks)))
	for _, t := range in.Tasks {
		w64(uint64(t.ID))
		io.WriteString(h, t.Label)
		h.Write([]byte{0})
		w64(uint64(t.SharedAccesses))
		w64(uint64(len(t.WCET)))
		for _, w := range t.WCET {
			w64(uint64(w))
		}
	}
	w64(uint64(len(in.Deps)))
	for _, d := range in.Deps {
		w64(uint64(d.From))
		w64(uint64(d.To))
		w64(uint64(d.VolumeBytes))
	}
	return h.Sum(nil), true
}

func schedulePass(policy sched.Policy) *pass.Pass {
	return &pass.Pass{
		Name: "schedule", Input: "sched-input", Output: "schedule+syswcet",
		Run: func(c *pass.Context) error {
			s, sys, err := scheduleAndAnalyze(pass.Need(c, keyInput), policy)
			if err != nil {
				return err
			}
			pass.Put(c, keySched, s)
			pass.Put(c, keySys, sys)
			return nil
		},
		Fingerprint: func(c *pass.Context) ([]byte, bool) {
			return fingerprintScheduleInput(pass.Need(c, keyInput), policy, pass.Need(c, keyCanon))
		},
		Snapshot: func(c *pass.Context) any {
			return &schedSnap{
				s:   cloneSchedule(pass.Need(c, keySched)),
				sys: cloneSysResult(pass.Need(c, keySys)),
			}
		},
		Restore: func(c *pass.Context, snap any) {
			s := snap.(*schedSnap)
			pass.Put(c, keySched, cloneSchedule(s.s))
			pass.Put(c, keySys, cloneSysResult(s.sys))
		},
		Dump: func(c *pass.Context) string {
			s := pass.Need(c, keySched)
			sys := pass.Need(c, keySys)
			var sb strings.Builder
			fmt.Fprintf(&sb, "policy=%v cores=%d makespan=%d iterations=%d\n", s.Policy, s.Cores, sys.Makespan, sys.Iterations)
			for _, pl := range s.Placements {
				fmt.Fprintf(&sb, "task %d -> core %d [%d, %d] bound=%d intf=%d\n",
					pl.Task, pl.Core, sys.Start[pl.Task], sys.Finish[pl.Task], sys.TaskBound[pl.Task], sys.InterferencePerTask[pl.Task])
			}
			return sb.String()
		},
	}
}

func parBuildPass(platform *adl.Platform, maxTasks int, policy sched.Policy) *pass.Pass {
	return &pass.Pass{
		Name: "par-build", Input: "schedule+syswcet", Output: "par-program",
		Run: func(c *pass.Context) error {
			pp, err := par.Build(pass.Need(c, keyIR), annGraph(c),
				pass.Need(c, keyInput), pass.Need(c, keySched), pass.Need(c, keySys), platform)
			// Build mutates variable storage (shared-buffer assignment)
			// even on error paths, so the memo is stale either way.
			invalidateIRMemo(c)
			if err != nil {
				return err
			}
			pass.Put(c, keyPar, pp)
			return nil
		},
		Fingerprint: func(c *pass.Context) ([]byte, bool) {
			// The fingerprint is taken before Run mutates variable storage,
			// so it addresses the round's input state; the snapshot's thaw
			// replays the mutations (see par.Snapshot.Thaw).
			return structuralFingerprint(c, uint64(maxTasks), uint64(policy))
		},
		Snapshot: func(c *pass.Context) any {
			s, ok := pass.Need(c, keyPar).Freeze(irMemoIndex(c))
			if !ok {
				return nil
			}
			return s
		},
		Restore: func(c *pass.Context, snap any) {
			tab := irMemoTable(c)
			pp := snap.(*par.Snapshot).Thaw(tab,
				platform, pass.Need(c, keyIR), annGraph(c),
				pass.Need(c, keyInput), pass.Need(c, keySched), pass.Need(c, keySys))
			// Thaw replays Build's storage mutations on the live program.
			invalidateIRMemo(c)
			pass.Put(c, keyPar, pp)
		},
		Dump: func(c *pass.Context) string {
			pp := pass.Need(c, keyPar)
			return fmt.Sprintf("cores=%d buffers=%d signals=%d demoted=%d prologue=%d epilogue=%d bound=%d",
				len(pp.CoreEntries), len(pp.Buffers), pp.Signals, len(pp.Demoted),
				pp.PrologueCycles, pp.EpilogueCycles, pp.BoundMakespan())
		},
	}
}

// --- post-loop passes -------------------------------------------------------

func validatePass() *pass.Pass {
	return &pass.Pass{
		Name: "validate", Input: "par-program", Output: "par-program",
		Run: func(c *pass.Context) error {
			if err := pass.Need(c, keyPar).Validate(); err != nil {
				return fmt.Errorf("parallel program invalid: %v", err)
			}
			return nil
		},
	}
}

func seqWCETPass() *pass.Pass {
	return &pass.Pass{
		Name: "seq-wcet", Input: "htg-annotated", Output: "seq-wcet",
		Run: func(c *pass.Context) error {
			pass.Put(c, keySeq, annGraph(c).SequentialWCET(0))
			return nil
		},
		Dump: func(c *pass.Context) string {
			return fmt.Sprintf("sequential-wcet=%d", pass.Need(c, keySeq))
		},
	}
}

// --- pipeline assembly ------------------------------------------------------

// pipeline is the back-end pass sequence for one set of options:
// pre-loop passes run once, loop passes run once per feedback round,
// post-loop passes run after the storage assignment stabilized.
type pipeline struct {
	pre, loop, post []*pass.Pass
}

func buildPipeline(opt Options, tOpt transform.Options, disabled map[string]bool) pipeline {
	return pipeline{
		pre:  append(transformPasses(tOpt, disabled), labelLoopsPass(), buildHTGPass()),
		loop: []*pass.Pass{annotatePass(), coarsenPass(opt.MaxTasks), schedInputPass(opt.Platform, opt.MaxTasks), schedulePass(opt.Policy), parBuildPass(opt.Platform, opt.MaxTasks, opt.Policy)},
		post: []*pass.Pass{validatePass(), seqWCETPass()},
	}
}

// disabledSet validates -disable-pass names: only transformation passes
// may be disabled (the structural passes are load-bearing).
func disabledSet(names []string) (map[string]bool, error) {
	if len(names) == 0 {
		return nil, nil
	}
	valid := make(map[string]bool)
	for _, n := range transform.PassNames() {
		valid[n] = true
	}
	out := make(map[string]bool, len(names))
	for _, n := range names {
		if !valid[n] {
			return nil, fmt.Errorf("core: unknown disableable pass %q (disableable: %s)", n, strings.Join(transform.PassNames(), ", "))
		}
		out[n] = true
	}
	return out, nil
}

// DescribePipeline returns the registered pass graph the options select,
// in execution order (argocc -passes, make passes). The front-end passes
// (check, lower) are included; loop passes are marked per-round.
func DescribePipeline(opt Options) ([]pass.Desc, error) {
	tOpt := opt.Transforms
	if opt.AutoSPM {
		if opt.Platform != nil {
			tOpt.SPM = spmOptionsFor(opt.Platform)
		} else {
			tOpt.SPM = &transform.SPMOptions{}
		}
	}
	disabled, err := disabledSet(opt.Passes.Disable)
	if err != nil {
		return nil, err
	}
	pl := buildPipeline(opt, tOpt, disabled)
	var ds []pass.Desc
	for _, p := range []*pass.Pass{checkPass(), lowerPass("", nil)} {
		ds = append(ds, p.Describe(false))
	}
	for _, p := range pl.pre {
		ds = append(ds, p.Describe(false))
	}
	for _, p := range pl.loop {
		ds = append(ds, p.Describe(true))
	}
	for _, p := range pl.post {
		ds = append(ds, p.Describe(false))
	}
	return ds, nil
}

// SimulateContext executes the compiled parallel program on the
// platform simulator, adapted as one instrumented "simulate" pass:
// cancellation, timing, and the argo_pass_ns/argo_pass_runs expvars
// follow the pass-manager contract like every pipeline stage.
func SimulateContext(ctx context.Context, a *Artifacts, inputs [][]float64) (*sim.Report, error) {
	var rep *sim.Report
	p := &pass.Pass{
		Name: "simulate", Input: "par-program", Output: "sim-report",
		Run: func(c *pass.Context) error {
			r, err := sim.RunContextInterp(c.Ctx(), a.Parallel, inputs, a.Options.Interp)
			if err != nil {
				return err
			}
			rep = r
			return nil
		},
	}
	if err := (&pass.Manager{}).Run(pass.NewContext(ctx), p); err != nil {
		return nil, err
	}
	return rep, nil
}

// SimulateFaultyContext is SimulateContext under deterministic fault
// injection (internal/fault): the run is adapted as one instrumented
// "simulate-faulty" pass. A zero spec behaves exactly like
// SimulateContext.
func SimulateFaultyContext(ctx context.Context, a *Artifacts, inputs [][]float64, spec fault.Spec) (*sim.Report, error) {
	var rep *sim.Report
	p := &pass.Pass{
		Name: "simulate-faulty", Input: "par-program", Output: "sim-report",
		Run: func(c *pass.Context) error {
			r, err := sim.RunFaultyInterp(c.Ctx(), a.Parallel, inputs, spec, a.Options.Interp)
			if err != nil {
				return err
			}
			rep = r
			return nil
		},
	}
	if err := (&pass.Manager{}).Run(pass.NewContext(ctx), p); err != nil {
		return nil, err
	}
	return rep, nil
}

// PassNames returns every pass name DescribePipeline can produce for the
// options, sorted (argocc -dump-after validation).
func PassNames(opt Options) []string {
	ds, err := DescribePipeline(opt)
	if err != nil {
		return nil
	}
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name
	}
	sort.Strings(names)
	return names
}
