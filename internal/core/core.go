// Package core is the ARGO tool-chain driver: it wires the complete
// cross-layer flow of paper Figure 1 — scil/Xcos model, IR lowering,
// predictability transformations, hierarchical task graph extraction,
// scheduling/mapping, parallel program model construction, and
// code-level + system-level WCET analysis — and implements the iterative
// optimization through cross-layer feedback of §II-E.
package core

import (
	"context"
	"fmt"
	"io"

	"argo/internal/adl"
	"argo/internal/htg"
	"argo/internal/ir"
	"argo/internal/par"
	"argo/internal/pass"
	"argo/internal/sched"
	"argo/internal/scil"
	"argo/internal/sim"
	"argo/internal/syswcet"
	"argo/internal/transform"
	"argo/internal/wcet"
	// Register the exact model-checking WCET engine so "mc" and "both"
	// resolve in every build that links the driver.
	_ "argo/internal/wcet/mc"
)

// Options configures one compilation.
type Options struct {
	// Entry is the scil entry function name.
	Entry string
	// Args are the entry argument specializations.
	Args []ir.ArgSpec
	// Platform is the ADL target.
	Platform *adl.Platform
	// Transforms selects the predictability transformations. If AutoSPM
	// is set, SPM options are derived from the platform and override
	// Transforms.SPM.
	Transforms transform.Options
	AutoSPM    bool
	// Policy selects the scheduler.
	Policy sched.Policy
	// MaxTasks caps graph size via granularity coarsening (0: no cap).
	MaxTasks int
	// FeedbackRounds caps the placement/analysis feedback loop.
	FeedbackRounds int
	// Parallelism bounds how many optimization candidates Optimize
	// evaluates concurrently (0: GOMAXPROCS, 1: serial). Results are
	// bit-identical at every setting.
	Parallelism int
	// Interp selects the simulator's execution engine: the compiled
	// register-bytecode VM (default) or the tree-walking oracle. Both
	// are observably bit-identical, so the choice is excluded from
	// result-cache keys.
	Interp sim.Interp
	// WCETEngine selects the code-level WCET engine: "ipet" (or empty,
	// the default), "mc" (exact slicing+model-checking bounds), or
	// "both" (IPET bounds downstream with the exact engine cross-checked
	// on every region — compilation fails if exact > IPET). Unlike
	// Interp, engines legitimately produce different bounds, so the
	// selection is part of every WCET-derived cache key.
	WCETEngine string
	// Passes configures the pass manager that executes the pipeline.
	Passes PassOptions
}

// PassOptions configures pass-manager behavior; the zero value is the
// standard configuration (all registered passes, global pass cache,
// wall-time instrumentation only).
type PassOptions struct {
	// Disable names transformation passes to skip (see
	// transform.PassNames; structural passes cannot be disabled).
	Disable []string
	// NoCache disables the content-addressed pass-level result cache.
	// Outputs are bit-identical with and without it.
	NoCache bool
	// Cache, when non-nil, replaces the process-global pass cache for
	// this execution (interactive sessions run on private caches so one
	// session's artifact history cannot evict another's). Ignored when
	// NoCache is set. Outputs are bit-identical for every cache choice.
	Cache *pass.Cache
	// OnTiming, when set, observes every completed pass's timing record
	// as soon as it is recorded (sessions stream one event per pass).
	OnTiming func(pass.Timing)
	// MeasureAllocs additionally records per-pass heap-allocation deltas
	// in the trace (process-wide counter delta: approximate under
	// concurrent executions).
	MeasureAllocs bool
	// DumpAfter dumps the named pass's output artifact to DumpWriter
	// after every execution of that pass (argocc -dump-after).
	DumpAfter  string
	DumpWriter io.Writer
	// AfterPass, when set, observes every completed pass (tests hook
	// here; called with the pass name and feedback round).
	AfterPass func(name string, round int)
}

// DefaultOptions returns the standard tool-chain configuration for a
// platform.
func DefaultOptions(entry string, args []ir.ArgSpec, platform *adl.Platform) Options {
	chunks := 0
	if platform.NumCores() > 1 {
		chunks = platform.NumCores()
	}
	return Options{
		Entry: entry, Args: args, Platform: platform,
		Transforms:     transform.Options{Fold: true, Hoist: true, ElideInits: true, Fission: true, ParallelChunks: chunks},
		AutoSPM:        true,
		Policy:         sched.ListContentionAware,
		FeedbackRounds: 8,
	}
}

// Artifacts is everything one compilation produces.
type Artifacts struct {
	Options   Options
	IR        *ir.Program
	Transform transform.Report
	Graph     *htg.Graph
	Input     *sched.Input
	Schedule  *sched.Schedule
	System    *syswcet.Result
	Parallel  *par.Program

	// SequentialWCET is the single-core code-level bound of the whole
	// program (the baseline guaranteed performance).
	SequentialWCET int64
	// FeedbackRounds is how many placement/analysis rounds ran.
	FeedbackRounds int
	// PassTrace is the per-pass instrumentation record of this
	// compilation (wall time, cache outcomes, feedback round), in
	// execution order starting with the front-end passes.
	PassTrace *pass.Trace
}

// Bound is the end-to-end system WCET bound (including DMA staging).
func (a *Artifacts) Bound() int64 { return a.Parallel.BoundMakespan() }

// WCETSpeedup is SequentialWCET / Bound — the guaranteed-performance
// speedup automatic parallelization achieved.
func (a *Artifacts) WCETSpeedup() float64 {
	if a.Bound() == 0 {
		return 0
	}
	return float64(a.SequentialWCET) / float64(a.Bound())
}

// Compile runs the full tool-chain on a checked scil program.
//
// Compile is reentrant: src is never mutated (the IR lowering produces a
// fresh program per call, and all later phases work on that copy), so
// the same *scil.Program may be compiled from many goroutines at once.
func Compile(src *scil.Program, opt Options) (*Artifacts, error) {
	return CompileContext(context.Background(), src, opt)
}

// CompileContext is Compile with cancellation: ctx is checked before the
// pipeline starts and between placement/analysis feedback rounds, so a
// cancelled or expired context stops the compilation at the next stage
// boundary and returns ctx.Err().
func CompileContext(ctx context.Context, src *scil.Program, opt Options) (*Artifacts, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.Platform == nil {
		return nil, fmt.Errorf("core: no platform")
	}
	fe, err := newFrontEnd(ctx, src, opt.Entry, opt.Args, opt.Passes)
	if err != nil {
		return nil, err
	}
	// One-shot compile: the front-end IR is private, no clone needed.
	return backEnd(ctx, fe.prog, opt, fe.trace)
}

// FrontEnd is the shared result of the source-level phases — model check
// and IR lowering for one (entry, args) specialization. The optimizer's
// candidate ladder varies only back-end options, so the front-end runs
// once and each candidate works on a private clone of its IR.
type FrontEnd struct {
	entry string
	args  []ir.ArgSpec
	prog  *ir.Program
	// trace holds the front-end pass timings; every candidate's
	// back-end trace is seeded with a copy.
	trace []pass.Timing
}

// NewFrontEnd checks src and lowers it to IR once.
func NewFrontEnd(ctx context.Context, src *scil.Program, entry string, args []ir.ArgSpec) (*FrontEnd, error) {
	return newFrontEnd(ctx, src, entry, args, PassOptions{})
}

// newFrontEnd runs the front-end passes (check, lower) under a pass
// manager so they are instrumented and dumpable like every other stage.
func newFrontEnd(ctx context.Context, src *scil.Program, entry string, args []ir.ArgSpec, popt PassOptions) (*FrontEnd, error) {
	c := pass.NewContext(ctx)
	pass.Put(c, keyModel, src)
	if err := newManager(popt).Run(c, checkPass(), lowerPass(entry, args)); err != nil {
		return nil, err
	}
	return &FrontEnd{entry: entry, args: args, prog: pass.Need(c, keyIR), trace: c.Trace().Passes}, nil
}

// newManager builds the pass manager one pipeline execution uses.
func newManager(popt PassOptions) *pass.Manager {
	m := &pass.Manager{MeasureAllocs: popt.MeasureAllocs, OnTiming: popt.OnTiming}
	switch {
	case popt.NoCache:
	case popt.Cache != nil:
		m.Cache = popt.Cache
	default:
		m.Cache = pass.Global
	}
	dump := popt.DumpAfter != "" && popt.DumpWriter != nil
	if popt.AfterPass != nil || dump {
		m.AfterPass = func(p *pass.Pass, c *pass.Context) {
			if popt.AfterPass != nil {
				popt.AfterPass(p.Name, c.Round)
			}
			if dump && popt.DumpAfter == p.Name {
				text := "(no dump available)"
				if p.Dump != nil {
					text = p.Dump(c)
				}
				fmt.Fprintf(popt.DumpWriter, "=== after pass %q (round %d) ===\n%s\n", p.Name, c.Round, text)
			}
		}
	}
	return m
}

// Matches reports whether the memoized front-end covers the given
// specialization.
func (fe *FrontEnd) Matches(entry string, args []ir.ArgSpec) bool {
	if fe == nil || fe.entry != entry || len(fe.args) != len(args) {
		return false
	}
	for i := range args {
		if fe.args[i] != args[i] {
			return false
		}
	}
	return true
}

// CompileContext runs the per-candidate back-end on a private clone of
// the front-end IR. It is safe to call concurrently: the shared IR is
// only read (during cloning), never mutated.
func (fe *FrontEnd) CompileContext(ctx context.Context, opt Options) (*Artifacts, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.Platform == nil {
		return nil, fmt.Errorf("core: no platform")
	}
	return backEnd(ctx, fe.prog.Clone(), opt, fe.trace)
}

// spmOptionsFor derives the scratchpad-promotion options AutoSPM uses
// from the platform numbers.
func spmOptionsFor(p *adl.Platform) *transform.SPMOptions {
	return &transform.SPMOptions{
		CapacityBytes:  p.Cores[0].SPM.SizeBytes,
		SharedLatency:  p.MaxSharedAccessIsolated(),
		SPMLatency:     p.Cores[0].SPM.LatencyCycles,
		DMACostPerByte: p.DMA.CyclesPerByte,
	}
}

// backEnd runs everything after lowering on the pass manager:
// predictability transformations, task graph extraction, scheduling,
// parallel program construction, and the placement/analysis feedback
// loop. prog is owned by the call; feTrace seeds the execution's trace
// with the front-end timings.
func backEnd(ctx context.Context, prog *ir.Program, opt Options, feTrace []pass.Timing) (*Artifacts, error) {
	tOpt := opt.Transforms
	if opt.AutoSPM {
		tOpt.SPM = spmOptionsFor(opt.Platform)
	}
	disabled, err := disabledSet(opt.Passes.Disable)
	if err != nil {
		return nil, err
	}
	sel, err := wcet.ParseSelection(opt.WCETEngine)
	if err != nil {
		return nil, err
	}
	pl := buildPipeline(opt, tOpt, disabled)

	mgr := newManager(opt.Passes)
	c := pass.NewContext(ctx)
	c.SeedTrace(feTrace)
	pass.Put(c, keyIR, prog)
	rep := &transform.Report{}
	pass.Put(c, keyReport, rep)
	canon := ""
	if data, err := adl.Encode(opt.Platform); err == nil {
		canon = string(data)
	}
	pass.Put(c, keyCanon, canon)
	models := make([]wcet.CostModel, opt.Platform.NumCores())
	for i := range models {
		models[i] = wcet.ModelFor(opt.Platform, i)
	}
	pass.Put(c, keyModels, models)
	pass.Put(c, keyEngine, sel)

	// Pre-loop passes: transformations, loop labeling, HTG extraction.
	// Graph structure (task regions, dependences, access ranges) depends
	// only on statement structure and variable identity — never on
	// storage classes — so it is built once; each feedback round clones
	// it and re-runs only the storage-aware annotation.
	if err := mgr.Run(c, pl.pre...); err != nil {
		return nil, err
	}

	rounds := opt.FeedbackRounds
	if rounds <= 0 {
		rounds = 8
	}
	art := &Artifacts{Options: opt}
	// Placement/analysis feedback: buffer placement may demote SPM
	// variables (shared between cores), which changes code-level WCETs —
	// iterate until the storage assignment is stable (paper §II-E:
	// feeding WCET information back to earlier phases).
	for round := 1; ; round++ {
		c.Round = round
		art.FeedbackRounds = round
		if err := mgr.Run(c, pl.loop...); err != nil {
			return nil, err
		}
		if pp := pass.Need(c, keyPar); len(pp.Demoted) > 0 && round < rounds {
			continue
		}
		break
	}
	c.Round = 0
	if err := mgr.Run(c, pl.post...); err != nil {
		return nil, err
	}

	art.IR = pass.Need(c, keyIR)
	art.Transform = *rep
	art.Graph = annGraph(c)
	art.Input = pass.Need(c, keyInput)
	art.Schedule = pass.Need(c, keySched)
	art.System = pass.Need(c, keySys)
	art.Parallel = pass.Need(c, keyPar)
	art.SequentialWCET = pass.Need(c, keySeq)
	art.PassTrace = c.Trace()
	return art, nil
}

// scheduleAndAnalyze runs the scheduler and the system-level analysis.
// The contention-aware policy is WCET-guided: both the penalized and the
// plain list schedules are constructed, both are analyzed, and the one
// with the lower system-level bound wins (cross-layer feedback selects
// the mapping, paper §II-E — the construction-time penalty is only a
// heuristic, the analyzed bound is the ground truth).
func scheduleAndAnalyze(in *sched.Input, policy sched.Policy) (*sched.Schedule, *syswcet.Result, error) {
	run := func(p sched.Policy) (*sched.Schedule, *syswcet.Result, error) {
		s, err := sched.Run(in, p)
		if err != nil {
			return nil, nil, err
		}
		sys, err := syswcet.Analyze(in, s)
		if err != nil {
			return nil, nil, err
		}
		return s, sys, nil
	}
	s, sys, err := run(policy)
	if err != nil {
		return nil, nil, err
	}
	if policy == sched.ListContentionAware {
		sObl, sysObl, err := run(sched.ListOblivious)
		if err != nil {
			return nil, nil, err
		}
		if sysObl.Makespan < sys.Makespan {
			s, sys = sObl, sysObl
			s.Policy = sched.ListContentionAware // selection is part of the aware policy
		}
	}
	return s, sys, nil
}

// CompileSource parses, checks, and compiles scil source text.
func CompileSource(source string, opt Options) (*Artifacts, error) {
	return CompileSourceContext(context.Background(), source, opt)
}

// CompileSourceContext is CompileSource with cancellation (see
// CompileContext).
func CompileSourceContext(ctx context.Context, source string, opt Options) (*Artifacts, error) {
	prog, err := scil.Parse(source)
	if err != nil {
		return nil, err
	}
	return CompileContext(ctx, prog, opt)
}
