// Package core is the ARGO tool-chain driver: it wires the complete
// cross-layer flow of paper Figure 1 — scil/Xcos model, IR lowering,
// predictability transformations, hierarchical task graph extraction,
// scheduling/mapping, parallel program model construction, and
// code-level + system-level WCET analysis — and implements the iterative
// optimization through cross-layer feedback of §II-E.
package core

import (
	"context"
	"fmt"

	"argo/internal/adl"
	"argo/internal/htg"
	"argo/internal/ir"
	"argo/internal/par"
	"argo/internal/sched"
	"argo/internal/scil"
	"argo/internal/syswcet"
	"argo/internal/transform"
	"argo/internal/wcet"
)

// Options configures one compilation.
type Options struct {
	// Entry is the scil entry function name.
	Entry string
	// Args are the entry argument specializations.
	Args []ir.ArgSpec
	// Platform is the ADL target.
	Platform *adl.Platform
	// Transforms selects the predictability transformations. If AutoSPM
	// is set, SPM options are derived from the platform and override
	// Transforms.SPM.
	Transforms transform.Options
	AutoSPM    bool
	// Policy selects the scheduler.
	Policy sched.Policy
	// MaxTasks caps graph size via granularity coarsening (0: no cap).
	MaxTasks int
	// FeedbackRounds caps the placement/analysis feedback loop.
	FeedbackRounds int
	// Parallelism bounds how many optimization candidates Optimize
	// evaluates concurrently (0: GOMAXPROCS, 1: serial). Results are
	// bit-identical at every setting.
	Parallelism int
}

// DefaultOptions returns the standard tool-chain configuration for a
// platform.
func DefaultOptions(entry string, args []ir.ArgSpec, platform *adl.Platform) Options {
	chunks := 0
	if platform.NumCores() > 1 {
		chunks = platform.NumCores()
	}
	return Options{
		Entry: entry, Args: args, Platform: platform,
		Transforms:     transform.Options{Fold: true, Hoist: true, ElideInits: true, Fission: true, ParallelChunks: chunks},
		AutoSPM:        true,
		Policy:         sched.ListContentionAware,
		FeedbackRounds: 8,
	}
}

// Artifacts is everything one compilation produces.
type Artifacts struct {
	Options   Options
	IR        *ir.Program
	Transform transform.Report
	Graph     *htg.Graph
	Input     *sched.Input
	Schedule  *sched.Schedule
	System    *syswcet.Result
	Parallel  *par.Program

	// SequentialWCET is the single-core code-level bound of the whole
	// program (the baseline guaranteed performance).
	SequentialWCET int64
	// FeedbackRounds is how many placement/analysis rounds ran.
	FeedbackRounds int
}

// Bound is the end-to-end system WCET bound (including DMA staging).
func (a *Artifacts) Bound() int64 { return a.Parallel.BoundMakespan() }

// WCETSpeedup is SequentialWCET / Bound — the guaranteed-performance
// speedup automatic parallelization achieved.
func (a *Artifacts) WCETSpeedup() float64 {
	if a.Bound() == 0 {
		return 0
	}
	return float64(a.SequentialWCET) / float64(a.Bound())
}

// Compile runs the full tool-chain on a checked scil program.
//
// Compile is reentrant: src is never mutated (the IR lowering produces a
// fresh program per call, and all later phases work on that copy), so
// the same *scil.Program may be compiled from many goroutines at once.
func Compile(src *scil.Program, opt Options) (*Artifacts, error) {
	return CompileContext(context.Background(), src, opt)
}

// CompileContext is Compile with cancellation: ctx is checked before the
// pipeline starts and between placement/analysis feedback rounds, so a
// cancelled or expired context stops the compilation at the next stage
// boundary and returns ctx.Err().
func CompileContext(ctx context.Context, src *scil.Program, opt Options) (*Artifacts, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.Platform == nil {
		return nil, fmt.Errorf("core: no platform")
	}
	fe, err := NewFrontEnd(ctx, src, opt.Entry, opt.Args)
	if err != nil {
		return nil, err
	}
	// One-shot compile: the front-end IR is private, no clone needed.
	return backEnd(ctx, fe.prog, opt)
}

// FrontEnd is the shared result of the source-level phases — model check
// and IR lowering for one (entry, args) specialization. The optimizer's
// candidate ladder varies only back-end options, so the front-end runs
// once and each candidate works on a private clone of its IR.
type FrontEnd struct {
	entry string
	args  []ir.ArgSpec
	prog  *ir.Program
}

// NewFrontEnd checks src and lowers it to IR once.
func NewFrontEnd(ctx context.Context, src *scil.Program, entry string, args []ir.ArgSpec) (*FrontEnd, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if errs := scil.Check(src, scil.CheckWCET); len(errs) > 0 {
		return nil, fmt.Errorf("core: model check failed: %v", errs[0])
	}
	prog, err := ir.Lower(src, entry, args)
	if err != nil {
		return nil, err
	}
	return &FrontEnd{entry: entry, args: args, prog: prog}, nil
}

// Matches reports whether the memoized front-end covers the given
// specialization.
func (fe *FrontEnd) Matches(entry string, args []ir.ArgSpec) bool {
	if fe == nil || fe.entry != entry || len(fe.args) != len(args) {
		return false
	}
	for i := range args {
		if fe.args[i] != args[i] {
			return false
		}
	}
	return true
}

// CompileContext runs the per-candidate back-end on a private clone of
// the front-end IR. It is safe to call concurrently: the shared IR is
// only read (during cloning), never mutated.
func (fe *FrontEnd) CompileContext(ctx context.Context, opt Options) (*Artifacts, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.Platform == nil {
		return nil, fmt.Errorf("core: no platform")
	}
	return backEnd(ctx, fe.prog.Clone(), opt)
}

// backEnd runs everything after lowering: predictability transformations,
// task graph extraction, scheduling, parallel program construction, and
// the placement/analysis feedback loop. prog is owned by the call.
func backEnd(ctx context.Context, prog *ir.Program, opt Options) (*Artifacts, error) {
	tOpt := opt.Transforms
	if opt.AutoSPM {
		tOpt.SPM = &transform.SPMOptions{
			CapacityBytes:  opt.Platform.Cores[0].SPM.SizeBytes,
			SharedLatency:  opt.Platform.MaxSharedAccessIsolated(),
			SPMLatency:     opt.Platform.Cores[0].SPM.LatencyCycles,
			DMACostPerByte: opt.Platform.DMA.CyclesPerByte,
		}
	}
	rep := transform.Apply(prog, tOpt)
	transform.LabelLoops(prog)

	models := make([]wcet.CostModel, opt.Platform.NumCores())
	for c := range models {
		models[c] = wcet.ModelFor(opt.Platform, c)
	}
	rounds := opt.FeedbackRounds
	if rounds <= 0 {
		rounds = 8
	}
	art := &Artifacts{Options: opt, IR: prog, Transform: rep}
	// Graph structure (task regions, dependences, access ranges) depends
	// only on statement structure and variable identity — never on
	// storage classes — so it is built once; each feedback round clones
	// it and re-runs only the storage-aware annotation.
	base := htg.Build(prog)
	// Placement/analysis feedback: buffer placement may demote SPM
	// variables (shared between cores), which changes code-level WCETs —
	// iterate until the storage assignment is stable (paper §II-E:
	// feeding WCET information back to earlier phases).
	for round := 1; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		art.FeedbackRounds = round
		g := base.Clone()
		htg.Annotate(g, models)
		if opt.MaxTasks > 0 && len(g.Nodes) > opt.MaxTasks {
			g.MergeUntil(opt.MaxTasks)
		}
		in := sched.FromHTG(g, opt.Platform)
		s, sys, err := scheduleAndAnalyze(in, opt.Policy)
		if err != nil {
			return nil, err
		}
		pp, err := par.Build(prog, g, in, s, sys, opt.Platform)
		if err != nil {
			return nil, err
		}
		if len(pp.Demoted) > 0 && round < rounds {
			continue
		}
		if err := pp.Validate(); err != nil {
			return nil, fmt.Errorf("core: parallel program invalid: %v", err)
		}
		art.Graph, art.Input, art.Schedule, art.System, art.Parallel = g, in, s, sys, pp
		break
	}
	art.SequentialWCET = art.Graph.SequentialWCET(0)
	return art, nil
}

// scheduleAndAnalyze runs the scheduler and the system-level analysis.
// The contention-aware policy is WCET-guided: both the penalized and the
// plain list schedules are constructed, both are analyzed, and the one
// with the lower system-level bound wins (cross-layer feedback selects
// the mapping, paper §II-E — the construction-time penalty is only a
// heuristic, the analyzed bound is the ground truth).
func scheduleAndAnalyze(in *sched.Input, policy sched.Policy) (*sched.Schedule, *syswcet.Result, error) {
	run := func(p sched.Policy) (*sched.Schedule, *syswcet.Result, error) {
		s, err := sched.Run(in, p)
		if err != nil {
			return nil, nil, err
		}
		sys, err := syswcet.Analyze(in, s)
		if err != nil {
			return nil, nil, err
		}
		return s, sys, nil
	}
	s, sys, err := run(policy)
	if err != nil {
		return nil, nil, err
	}
	if policy == sched.ListContentionAware {
		sObl, sysObl, err := run(sched.ListOblivious)
		if err != nil {
			return nil, nil, err
		}
		if sysObl.Makespan < sys.Makespan {
			s, sys = sObl, sysObl
			s.Policy = sched.ListContentionAware // selection is part of the aware policy
		}
	}
	return s, sys, nil
}

// CompileSource parses, checks, and compiles scil source text.
func CompileSource(source string, opt Options) (*Artifacts, error) {
	return CompileSourceContext(context.Background(), source, opt)
}

// CompileSourceContext is CompileSource with cancellation (see
// CompileContext).
func CompileSourceContext(ctx context.Context, source string, opt Options) (*Artifacts, error) {
	prog, err := scil.Parse(source)
	if err != nil {
		return nil, err
	}
	return CompileContext(ctx, prog, opt)
}
