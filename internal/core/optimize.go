package core

import (
	"context"
	"fmt"

	"argo/internal/conc"
	"argo/internal/sched"
	"argo/internal/scil"
	"argo/internal/transform"
)

// Candidate is one point of the cross-layer optimization space.
type Candidate struct {
	Name       string
	Transforms transform.Options
	AutoSPM    bool
	Policy     sched.Policy
	MaxTasks   int
}

// IterationRecord is one step of the iterative optimization history.
type IterationRecord struct {
	Iteration int
	Candidate Candidate
	Bound     int64
	// BestSoFar is the best bound after this iteration.
	BestSoFar int64
	Err       error
}

// OptimizeResult is the outcome of the iterative cross-layer
// optimization loop.
type OptimizeResult struct {
	Best    *Artifacts
	History []IterationRecord
}

// DefaultCandidates enumerates the configuration ladder the iterative
// optimizer walks: the phase-ordering problem (paper §II-E) is attacked
// by trying transformation/granularity/mapping combinations and feeding
// the resulting system-level WCET back as the selection criterion.
func DefaultCandidates(cores int) []Candidate {
	base := transform.Options{Fold: true, Hoist: true}
	fission := transform.Options{Fold: true, Hoist: true, ElideInits: true, Fission: true}
	chunk := transform.Options{Fold: true, Hoist: true, ElideInits: true, Fission: true, ParallelChunks: cores}
	chunk2x := transform.Options{Fold: true, Hoist: true, ElideInits: true, Fission: true, ParallelChunks: 2 * cores}
	unroll := transform.Options{Fold: true, Hoist: true, ElideInits: true, Fission: true, ParallelChunks: cores, UnrollFactor: 2}
	cands := []Candidate{
		{Name: "baseline", Transforms: base, Policy: sched.ListContentionAware},
		{Name: "fission", Transforms: fission, Policy: sched.ListContentionAware},
		{Name: "fission+spm", Transforms: fission, AutoSPM: true, Policy: sched.ListContentionAware},
		{Name: "chunked", Transforms: chunk, Policy: sched.ListContentionAware},
		{Name: "chunked+spm", Transforms: chunk, AutoSPM: true, Policy: sched.ListContentionAware},
		{Name: "chunked2x+spm", Transforms: chunk2x, AutoSPM: true, Policy: sched.ListContentionAware},
		{Name: "chunked+spm+unroll2", Transforms: unroll, AutoSPM: true, Policy: sched.ListContentionAware},
		{Name: "chunked+spm+coarse", Transforms: chunk, AutoSPM: true, Policy: sched.ListContentionAware, MaxTasks: 4 * cores},
		{Name: "chunked+spm+oblivious", Transforms: chunk, AutoSPM: true, Policy: sched.ListOblivious},
	}
	return cands
}

// Optimize runs the iterative optimization loop: each candidate is
// compiled and analyzed, and the configuration with the lowest
// system-level WCET bound wins. maxIter caps the number of candidates
// tried (0: all).
func Optimize(src *scil.Program, baseOpt Options, cands []Candidate, maxIter int) (*OptimizeResult, error) {
	return OptimizeContext(context.Background(), src, baseOpt, cands, maxIter)
}

// OptimizeContext is Optimize with cancellation: ctx stops the ladder at
// the next candidate boundary and returns ctx.Err().
//
// Candidates are evaluated concurrently on up to baseOpt.Parallelism
// workers (0: GOMAXPROCS). The source is checked and lowered once by the
// shared front-end; each candidate back-end runs on a private clone of
// the IR. Results are bit-for-bit identical to the serial walk at every
// parallelism degree: History stays in candidate order, and a tie on the
// best bound resolves to the lowest candidate index (reduction happens
// in index order with a strict < comparison).
func OptimizeContext(ctx context.Context, src *scil.Program, baseOpt Options, cands []Candidate, maxIter int) (*OptimizeResult, error) {
	if baseOpt.Platform == nil {
		return nil, fmt.Errorf("core: no platform")
	}
	if len(cands) == 0 {
		cands = DefaultCandidates(baseOpt.Platform.NumCores())
	}
	if maxIter > 0 && len(cands) > maxIter {
		cands = cands[:maxIter]
	}
	fe, err := newFrontEnd(ctx, src, baseOpt.Entry, baseOpt.Args, baseOpt.Passes)
	if err != nil {
		return nil, err
	}
	type outcome struct {
		art *Artifacts
		err error
	}
	opts := make([]Options, len(cands))
	for i, c := range cands {
		opt := baseOpt
		opt.Transforms = c.Transforms
		opt.AutoSPM = c.AutoSPM
		opt.Policy = c.Policy
		opt.MaxTasks = c.MaxTasks
		opts[i] = opt
	}
	outs := make([]outcome, len(cands))
	if err := conc.ForEach(ctx, baseOpt.Parallelism, len(cands), func(i int) {
		art, err := fe.CompileContext(ctx, opts[i])
		outs[i] = outcome{art, err}
	}); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &OptimizeResult{}
	var bestBound int64 = -1
	for i, c := range cands {
		rec := IterationRecord{Iteration: i + 1, Candidate: c, Err: outs[i].err}
		if outs[i].err == nil {
			rec.Bound = outs[i].art.Bound()
			if bestBound < 0 || rec.Bound < bestBound {
				bestBound = rec.Bound
				res.Best = outs[i].art
			}
		}
		rec.BestSoFar = bestBound
		res.History = append(res.History, rec)
	}
	if res.Best == nil {
		return nil, fmt.Errorf("core: no candidate compiled successfully")
	}
	return res, nil
}
