package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"argo/internal/adl"
	"argo/internal/ir"
	"argo/internal/pass"
	"argo/internal/usecases"
)

// TestPassCacheKeepsOptimizeIdentical pins the tentpole caching
// guarantee: an Optimize ladder with the pass cache enabled produces
// bit-identical history and winner to a cache-disabled run, while the
// cache actually serves hits (candidates share transformation prefixes,
// and a 2-round feedback ladder re-runs loop passes).
func TestPassCacheKeepsOptimizeIdentical(t *testing.T) {
	uc := usecases.ByName("egpws")
	src, err := uc.Program()
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultOptions(uc.Entry, uc.Args, adl.XentiumPlatform(4))
	base.FeedbackRounds = 2

	pass.Global.Reset()
	hits0, _ := pass.CacheCounters()
	cached, err := Optimize(src, base, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits1, _ := pass.CacheCounters()
	if hits1 <= hits0 {
		t.Fatalf("argo_pass_cache_hits did not grow during the candidate ladder (%d -> %d)", hits0, hits1)
	}

	plainOpt := base
	plainOpt.Passes.NoCache = true
	plain, err := Optimize(src, plainOpt, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := optimizeHistoryFingerprint(plain)
	got := optimizeHistoryFingerprint(cached)
	if got != want {
		t.Fatalf("cached optimize diverged from uncached run:\ncached:\n%s\nuncached:\n%s", got, want)
	}
}

// TestCompileCancelledMidPipeline pins the cancellation contract: a
// cancel that lands while a pass is executing aborts within one pass
// boundary, returns context.Canceled (unwrapped), and yields no partial
// Artifacts.
func TestCompileCancelledMidPipeline(t *testing.T) {
	p := parse(t, pipelineSrc)
	opt := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(16, 16)}, adl.XentiumPlatform(2))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var observed []string
	opt.Passes.AfterPass = func(name string, round int) {
		observed = append(observed, name)
		if name == "build-htg" {
			cancel() // arrives while the pipeline is mid-flight
		}
	}
	art, err := CompileContext(ctx, p, opt)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if art != nil {
		t.Fatal("cancelled compile returned partial Artifacts")
	}
	if len(observed) == 0 || observed[len(observed)-1] != "build-htg" {
		t.Fatalf("passes observed after cancellation: %v (nothing may run past build-htg)", observed)
	}
}

// TestDisablePassMatchesOptionOff pins that -disable-pass is equivalent
// to not enabling the transformation in the first place.
func TestDisablePassMatchesOptionOff(t *testing.T) {
	p := parse(t, pipelineSrc)
	platform := adl.XentiumPlatform(2)

	viaDisable := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(12, 12)}, platform)
	viaDisable.Passes.Disable = []string{"fission"}
	a, err := Compile(p, viaDisable)
	if err != nil {
		t.Fatal(err)
	}

	viaOption := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(12, 12)}, platform)
	viaOption.Transforms.Fission = false
	b, err := Compile(p, viaOption)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bound() != b.Bound() || a.Transform.FissionSplits != 0 {
		t.Fatalf("disable-pass bound=%d splits=%d, option-off bound=%d",
			a.Bound(), a.Transform.FissionSplits, b.Bound())
	}
}

func TestDisableUnknownPassRejected(t *testing.T) {
	p := parse(t, pipelineSrc)
	opt := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(8, 8)}, adl.XentiumPlatform(2))
	opt.Passes.Disable = []string{"schedule"}
	if _, err := Compile(p, opt); err == nil || !strings.Contains(err.Error(), "unknown disableable pass") {
		t.Fatalf("err = %v, want unknown-disableable-pass error", err)
	}
}

func TestPassTraceRecorded(t *testing.T) {
	p := parse(t, pipelineSrc)
	opt := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(10, 10)}, adl.XentiumPlatform(4))
	opt.Passes.MeasureAllocs = true
	art, err := Compile(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	tr := art.PassTrace
	if tr == nil || len(tr.Passes) < 6 {
		t.Fatalf("pass trace missing or too short: %+v", tr)
	}
	if tr.Passes[0].Pass != "check" || tr.Passes[1].Pass != "lower" {
		t.Fatalf("trace does not start with the front-end: %q, %q", tr.Passes[0].Pass, tr.Passes[1].Pass)
	}
	runs := map[string]int{}
	for _, tm := range tr.Passes {
		runs[tm.Pass]++
	}
	if runs["schedule"] != art.FeedbackRounds {
		t.Fatalf("schedule ran %d times, want one per feedback round (%d)", runs["schedule"], art.FeedbackRounds)
	}
	for _, name := range []string{"build-htg", "annotate", "par-build", "validate", "seq-wcet"} {
		if runs[name] == 0 {
			t.Fatalf("pass %q missing from trace (trace: %v)", name, runs)
		}
	}
}

func TestDumpAfterWritesArtifact(t *testing.T) {
	p := parse(t, pipelineSrc)
	opt := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(10, 10)}, adl.XentiumPlatform(2))
	var buf bytes.Buffer
	opt.Passes.DumpAfter = "build-htg"
	opt.Passes.DumpWriter = &buf
	if _, err := Compile(p, opt); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, `after pass "build-htg"`) || len(out) < 40 {
		t.Fatalf("dump-after output missing or empty:\n%s", out)
	}
}

func TestDescribePipeline(t *testing.T) {
	opt := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(10, 10)}, adl.XentiumPlatform(4))
	ds, err := DescribePipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	byName := map[string]pass.Desc{}
	for _, d := range ds {
		names = append(names, d.Name)
		byName[d.Name] = d
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"check lower", "fold", "label-loops build-htg annotate", "sched-input schedule par-build", "validate seq-wcet"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("pipeline order missing %q: %s", want, joined)
		}
	}
	if !byName["fold"].Cacheable || !byName["schedule"].Cacheable {
		t.Fatal("fold and schedule must be cacheable")
	}
	for _, name := range []string{"build-htg", "annotate", "coarsen", "sched-input", "par-build"} {
		if !byName[name].Cacheable {
			t.Fatalf("structural pass %s must be cacheable (remap-on-restore snapshots)", name)
		}
	}
	if !byName["schedule"].Loop || byName["build-htg"].Loop {
		t.Fatal("loop markers wrong")
	}
}
