package core

import (
	"context"
	"fmt"
	"testing"

	"argo/internal/adl"
	"argo/internal/usecases"
)

// optimizeHistoryFingerprint renders everything observable about an
// optimization run so serial and parallel runs can be compared
// bit-for-bit: candidate order, per-candidate bound, error presence, the
// running best, and the winner's bound and configuration.
func optimizeHistoryFingerprint(res *OptimizeResult) string {
	s := ""
	for _, rec := range res.History {
		errStr := ""
		if rec.Err != nil {
			errStr = rec.Err.Error()
		}
		s += fmt.Sprintf("%d %s bound=%d best=%d err=%q\n",
			rec.Iteration, rec.Candidate.Name, rec.Bound, rec.BestSoFar, errStr)
	}
	s += fmt.Sprintf("winner bound=%d policy=%v tasks=%d\n",
		res.Best.Bound(), res.Best.Options.Policy, len(res.Best.Input.Tasks))
	return s
}

// TestOptimizeParallelMatchesSerial pins the tentpole determinism
// guarantee: across the use case x platform matrix, the parallel
// candidate ladder produces a Best bound and History bit-identical to
// the serial walk. Run under -race this also exercises the concurrent
// front-end sharing.
func TestOptimizeParallelMatchesSerial(t *testing.T) {
	platforms := []struct {
		name string
		p    *adl.Platform
	}{
		{"xentium2", adl.XentiumPlatform(2)},
		{"xentium4", adl.XentiumPlatform(4)},
		{"tdm2", adl.XentiumTDMPlatform(2)},
		{"noc2x2", adl.Leon3TilePlatform(2, 2)},
	}
	for _, uc := range usecases.All() {
		for _, pl := range platforms {
			uc, pl := uc, pl
			t.Run(uc.Name+"/"+pl.name, func(t *testing.T) {
				t.Parallel()
				src, err := uc.Program()
				if err != nil {
					t.Fatal(err)
				}
				base := DefaultOptions(uc.Entry, uc.Args, pl.p)

				serialOpt := base
				serialOpt.Parallelism = 1
				serial, err := Optimize(src, serialOpt, nil, 0)
				if err != nil {
					t.Fatal(err)
				}

				parOpt := base
				parOpt.Parallelism = 4
				par, err := Optimize(src, parOpt, nil, 0)
				if err != nil {
					t.Fatal(err)
				}

				want := optimizeHistoryFingerprint(serial)
				got := optimizeHistoryFingerprint(par)
				if got != want {
					t.Fatalf("parallel run diverges from serial:\n--- parallel ---\n%s--- serial ---\n%s", got, want)
				}
				if par.Best.Bound() != serial.Best.Bound() {
					t.Fatalf("best bound: parallel %d, serial %d", par.Best.Bound(), serial.Best.Bound())
				}
			})
		}
	}
}

// TestOptimizeTieResolvesToLowestIndex pins the tie-break rule: when two
// candidates produce the same best bound, the lowest candidate index
// wins regardless of completion order.
func TestOptimizeTieResolvesToLowestIndex(t *testing.T) {
	uc := usecases.ByName("polka")
	src, err := uc.Program()
	if err != nil {
		t.Fatal(err)
	}
	plat := adl.XentiumPlatform(2)
	base := DefaultOptions(uc.Entry, uc.Args, plat)
	cands := DefaultCandidates(plat.NumCores())
	// Duplicate the full ladder: every second-half candidate ties its
	// first-half twin, so the winner must come from the first half.
	dup := append(append([]Candidate{}, cands...), cands...)
	base.Parallelism = 4
	res, err := Optimize(src, base, dup, 0)
	if err != nil {
		t.Fatal(err)
	}
	winIdx := -1
	for i, rec := range res.History {
		if rec.Err == nil && rec.Bound == res.Best.Bound() {
			winIdx = i
			break
		}
	}
	if winIdx < 0 || winIdx >= len(cands) {
		t.Fatalf("winner index %d not in first copy of the ladder (len %d)", winIdx, len(cands))
	}
	win := res.History[winIdx].Candidate
	if res.Best.Options.Policy != win.Policy || res.Best.Options.MaxTasks != win.MaxTasks ||
		res.Best.Options.AutoSPM != win.AutoSPM || res.Best.Options.Transforms != win.Transforms {
		t.Fatalf("Best artifacts options %+v do not match winning candidate %+v", res.Best.Options, win)
	}
}

// TestOptimizeContextCancellation: a cancelled context stops the ladder
// and surfaces ctx.Err().
func TestOptimizeContextCancellation(t *testing.T) {
	uc := usecases.ByName("polka")
	src, err := uc.Program()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := DefaultOptions(uc.Entry, uc.Args, adl.XentiumPlatform(2))
	if _, err := OptimizeContext(ctx, src, base, nil, 0); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
