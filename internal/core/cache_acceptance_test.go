// Acceptance tests for the remap-on-restore snapshot codec: a second
// fresh compilation of an identical configuration must restore the
// whole structural ladder (build-htg, annotate, coarsen, sched-input,
// par-build) from the process-wide pass cache — zero re-executions —
// and still be bit-identical to a cache-disabled compilation. The tests
// live in package core_test because the bit-identity oracle is
// session.ResultFingerprint, and internal/session imports core.
package core_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"argo/internal/adl"
	"argo/internal/core"
	"argo/internal/ir"
	"argo/internal/pass"
	"argo/internal/sched"
	"argo/internal/scil"
	"argo/internal/session"
	"argo/internal/usecases"
)

// structuralPasses are the five passes the snapshot codec made
// cacheable (they publish artifacts holding IR pointers, frozen by
// registration/traversal index).
var structuralPasses = []string{"build-htg", "annotate", "coarsen", "sched-input", "par-build"}

func structuralRuns() map[string]int64 {
	out := make(map[string]int64, len(structuralPasses))
	for _, name := range structuralPasses {
		out[name] = pass.Runs(name)
	}
	return out
}

// TestFreshCompileServedFromGlobalCache pins the tentpole acceptance
// criterion: after one compilation warms pass.Global, a second fresh
// core.Compile of the identical configuration (a distinct pass.Context,
// as a new argod request or session would present) re-runs none of the
// structural passes, grows argo_pass_cache_hits, and produces a result
// fingerprint bit-identical to a compilation with caching disabled.
func TestFreshCompileServedFromGlobalCache(t *testing.T) {
	uc := usecases.ByName("egpws")
	src, err := uc.Program()
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(uc.Entry, uc.Args, adl.XentiumPlatform(4))

	pass.Global.Reset()
	first, err := core.Compile(src, opt)
	if err != nil {
		t.Fatal(err)
	}

	runsBefore := structuralRuns()
	hits0, _ := pass.CacheCounters()
	second, err := core.Compile(src, opt)
	if err != nil {
		t.Fatal(err)
	}
	hits1, _ := pass.CacheCounters()
	if hits1 <= hits0 {
		t.Fatalf("argo_pass_cache_hits did not grow across the warm compile (%d -> %d)", hits0, hits1)
	}
	for _, name := range structuralPasses {
		if delta := pass.Runs(name) - runsBefore[name]; delta != 0 {
			t.Errorf("structural pass %q re-ran %d times on the warm compile; want 0 (argo_pass_runs)", name, delta)
		}
	}
	if a, b := session.ResultFingerprint(first), session.ResultFingerprint(second); a != b {
		t.Fatalf("warm compile diverged from cold compile:\ncold %s\nwarm %s", b, a)
	}

	plain := opt
	plain.Passes.NoCache = true
	uncached, err := core.Compile(src, plain)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := session.ResultFingerprint(second), session.ResultFingerprint(uncached); a != b {
		t.Fatalf("cached compile diverged from NoCache run:\ncached   %s\nuncached %s", a, b)
	}
}

// TestWarmCompileAcrossPlatformsKeysDistinctly guards the fingerprint
// keys: a different platform must not be served another platform's
// structural artifacts.
func TestWarmCompileAcrossPlatformsKeysDistinctly(t *testing.T) {
	uc := usecases.ByName("polka")
	src, err := uc.Program()
	if err != nil {
		t.Fatal(err)
	}
	pass.Global.Reset()
	a, err := core.Compile(src, core.DefaultOptions(uc.Entry, uc.Args, adl.XentiumPlatform(2)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Compile(src, core.DefaultOptions(uc.Entry, uc.Args, adl.XentiumPlatform(4)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule.Cores == b.Schedule.Cores {
		t.Fatalf("2-core and 4-core compiles agree on %d cores — cache key ignores the platform", a.Schedule.Cores)
	}
}

// FuzzSnapshotRemap hunts codec bugs: for arbitrary (use case, source
// tweak, platform width, policy) configurations, freezing the compiled
// task graph and parallel program and thawing them back against the
// same program must reproduce them bit-identically — the graph via
// reflect.DeepEqual (Uses/Ranges travel through the positional codec,
// so this also checks their encoding), the schedule pipeline via a
// fresh sched run on the thawed graph, and the parallel program via
// session.ResultFingerprint.
func FuzzSnapshotRemap(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(0), uint8(0))
	f.Add(uint8(1), uint8(2), uint8(1), uint8(3))
	f.Add(uint8(2), uint8(7), uint8(0), uint8(9))
	f.Add(uint8(3), uint8(3), uint8(1), uint8(0xff))

	all := usecases.All()
	f.Fuzz(func(t *testing.T, ucSel, cores, polSel, tweak uint8) {
		uc := all[int(ucSel)%len(all)]
		src, err := uc.Program()
		if err != nil {
			t.Skip()
		}
		if tweak != 0 {
			// Vary the source so the codec sees graphs beyond the stock
			// corpus: append a scalar statement to one function.
			text := scil.Format(src)
			stmt := fmt.Sprintf("  fz = %d + 2\nendfunction", int(tweak)%17)
			if src, err = scil.Parse(strings.Replace(text, "endfunction", stmt, 1)); err != nil {
				t.Skip()
			}
			if errs := scil.Check(src, scil.CheckWCET); len(errs) > 0 {
				t.Skip()
			}
		}
		opt := core.DefaultOptions(uc.Entry, uc.Args, adl.XentiumPlatform(int(cores)%7+2))
		if polSel%2 == 1 {
			opt.Policy = sched.ListOblivious
		}
		art, err := core.Compile(src, opt)
		if err != nil {
			t.Skip()
		}

		idx := ir.NewSnapshotIndex(art.IR)
		tab := ir.NewSnapshotTable(art.IR)

		frozen, ok := art.Graph.Freeze(idx)
		if !ok {
			t.Fatal("compiled graph not freezable against its own program")
		}
		thawed := frozen.Thaw(tab)
		if !reflect.DeepEqual(art.Graph, thawed) {
			t.Fatalf("graph freeze/thaw round trip diverged:\n%+v\nvs\n%+v", art.Graph, thawed)
		}
		in1 := sched.FromHTG(art.Graph, opt.Platform)
		in2 := sched.FromHTG(thawed, opt.Platform)
		if !reflect.DeepEqual(in1, in2) {
			t.Fatal("sched inputs diverged after graph thaw")
		}
		sc1, err1 := sched.Run(in1, opt.Policy)
		sc2, err2 := sched.Run(in2, opt.Policy)
		if (err1 == nil) != (err2 == nil) || (err1 == nil && !reflect.DeepEqual(sc1, sc2)) {
			t.Fatalf("schedules diverged after graph thaw: %v vs %v", err1, err2)
		}

		snap, ok := art.Parallel.Freeze(idx)
		if !ok {
			t.Fatal("compiled parallel program not freezable against its own program")
		}
		p2 := snap.Thaw(tab, art.Options.Platform, art.Parallel.IR,
			art.Parallel.Graph, art.Parallel.Input, art.Parallel.Schedule, art.Parallel.System)
		if err := p2.Validate(); err != nil {
			t.Fatalf("thawed parallel program invalid: %v", err)
		}
		art2 := *art
		art2.Parallel = p2
		if a, b := session.ResultFingerprint(art), session.ResultFingerprint(&art2); a != b {
			t.Fatalf("parallel program freeze/thaw changed the result fingerprint:\n%s\nvs\n%s", a, b)
		}
	})
}
