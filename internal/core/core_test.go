package core

import (
	"strings"
	"testing"

	"argo/internal/adl"
	"argo/internal/ir"
	"argo/internal/scil"
	"argo/internal/sim"
)

const pipelineSrc = `
function [outa, outb] = app(img)
  h = size(img, 1)
  w = size(img, 2)
  tmp = zeros(h, w)
  outa = zeros(h, w)
  outb = zeros(h, w)
  for i = 1:h
    for j = 1:w
      g = img(i, j) * 0.5
      tmp(i, j) = g + 1
    end
  end
  for i = 1:h
    for j = 1:w
      outa(i, j) = tmp(i, j) * 2
      outb(i, j) = tmp(i, j) - 3
    end
  end
endfunction`

func parse(t *testing.T, src string) *scil.Program {
	t.Helper()
	p, err := scil.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileEndToEnd(t *testing.T) {
	p := parse(t, pipelineSrc)
	opt := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(10, 10)}, adl.XentiumPlatform(4))
	art, err := Compile(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if art.Bound() <= 0 {
		t.Fatalf("bound: %d", art.Bound())
	}
	if len(art.Graph.Nodes) < 2 {
		t.Fatalf("no parallelism extracted: %d tasks", len(art.Graph.Nodes))
	}
	if art.WCETSpeedup() <= 1.0 {
		t.Fatalf("speedup: %f", art.WCETSpeedup())
	}
	if err := art.Parallel.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompileFeedbackStabilizesStorage(t *testing.T) {
	p := parse(t, pipelineSrc)
	opt := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(10, 10)}, adl.XentiumPlatform(4))
	art, err := Compile(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	// After the feedback loop, no demotions may remain pending.
	if len(art.Parallel.Demoted) > 0 && art.FeedbackRounds < 8 {
		t.Fatalf("unstable storage after %d rounds", art.FeedbackRounds)
	}
}

func TestCompiledProgramSimulatesWithinBound(t *testing.T) {
	p := parse(t, pipelineSrc)
	for _, platform := range []*adl.Platform{
		adl.XentiumPlatform(2), adl.XentiumPlatform(4), adl.Leon3TilePlatform(2, 2),
	} {
		opt := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(10, 10)}, platform)
		art, err := Compile(p, opt)
		if err != nil {
			t.Fatalf("%s: %v", platform.Name, err)
		}
		in := make([]float64, 100)
		for i := range in {
			in[i] = float64(i%17) - 5
		}
		rep, err := sim.Run(art.Parallel, [][]float64{in})
		if err != nil {
			t.Fatalf("%s: %v", platform.Name, err)
		}
		if err := sim.CheckAgainstBounds(art.Parallel, rep); err != nil {
			t.Fatalf("%s: %v", platform.Name, err)
		}
	}
}

func TestCompileSourceParsesErrors(t *testing.T) {
	_, err := CompileSource("function f(", DefaultOptions("f", nil, adl.XentiumPlatform(1)))
	if err == nil {
		t.Fatal("expected parse error")
	}
	_, err = CompileSource(`function r = f(x)
  r = undefined_thing(x)
endfunction`, DefaultOptions("f", []ir.ArgSpec{ir.ScalarArg()}, adl.XentiumPlatform(1)))
	if err == nil || !strings.Contains(err.Error(), "check failed") {
		t.Fatalf("err = %v", err)
	}
}

// computeHeavySrc has a high compute-to-memory ratio (transcendental ops
// per element), where parallelization beats single-core locality.
const computeHeavySrc = `
function [outa, outb] = heavy(img)
  h = size(img, 1)
  w = size(img, 2)
  outa = zeros(h, w)
  outb = zeros(h, w)
  for i = 1:h
    for j = 1:w
      v = img(i, j)
      outa(i, j) = sin(v) * cos(v) + sqrt(abs(v)) + exp(-abs(v))
    end
  end
  for i = 1:h
    for j = 1:w
      v = img(i, j)
      outb(i, j) = atan2(v, 1 + v * v) + log(1 + abs(v))
    end
  end
endfunction`

func TestMoreCoresLowerBoundOnComputeHeavyKernel(t *testing.T) {
	p := parse(t, computeHeavySrc)
	bound := func(cores int) int64 {
		opt := DefaultOptions("heavy", []ir.ArgSpec{ir.MatrixArg(12, 12)}, adl.XentiumPlatform(cores))
		art, err := Compile(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		return art.Bound()
	}
	b1, b4 := bound(1), bound(4)
	if b4 >= b1 {
		t.Fatalf("4 cores (%d) should beat 1 core (%d)", b4, b1)
	}
}

// TestLocalityCanBeatParallelism documents the converse: on a
// memory-dominated kernel whose working set fits one scratchpad, the
// tool-chain correctly reports that a single core (full SPM locality)
// has the better guaranteed bound than a shared-memory parallelization —
// exactly the kind of trade-off the cross-layer report surfaces.
func TestLocalityCanBeatParallelism(t *testing.T) {
	p := parse(t, pipelineSrc)
	bound := func(cores int) int64 {
		opt := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(12, 12)}, adl.XentiumPlatform(cores))
		art, err := Compile(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		return art.Bound()
	}
	b1, b4 := bound(1), bound(4)
	if b1 >= b4 {
		t.Skipf("platform numbers made parallel win (%d vs %d) — fine", b4, b1)
	}
}

func TestMaxTasksCoarsening(t *testing.T) {
	p := parse(t, pipelineSrc)
	opt := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(10, 10)}, adl.XentiumPlatform(2))
	opt.MaxTasks = 3
	art, err := Compile(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Graph.Nodes) > 3 {
		t.Fatalf("tasks: %d", len(art.Graph.Nodes))
	}
}

func TestOptimizeImprovesOrMatchesBaseline(t *testing.T) {
	p := parse(t, pipelineSrc)
	base := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(10, 10)}, adl.XentiumPlatform(4))
	res, err := Optimize(p, base, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || len(res.History) < 4 {
		t.Fatalf("history: %d", len(res.History))
	}
	// Best-so-far must be monotone non-increasing.
	var prev int64 = -1
	for _, rec := range res.History {
		if rec.BestSoFar <= 0 {
			continue
		}
		if prev > 0 && rec.BestSoFar > prev {
			t.Fatalf("best-so-far increased: %v", res.History)
		}
		prev = rec.BestSoFar
	}
	// The winner must be at least as good as the plain baseline.
	for _, rec := range res.History {
		if rec.Candidate.Name == "baseline" && rec.Err == nil {
			if res.Best.Bound() > rec.Bound {
				t.Fatalf("optimizer best %d worse than baseline %d", res.Best.Bound(), rec.Bound)
			}
		}
	}
}

func TestExplainReport(t *testing.T) {
	p := parse(t, pipelineSrc)
	opt := DefaultOptions("app", []ir.ArgSpec{ir.MatrixArg(10, 10)}, adl.XentiumPlatform(4))
	art, err := Compile(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep := Explain(art)
	for _, want := range []string{"cross-layer report", "[tasks]", "[schedule]", "[wcet]", "[timeline]", "[bottlenecks]", "speedup"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("explain missing %q:\n%s", want, rep)
		}
	}
}

func TestCompileRejectsSharedMemoryOverflow(t *testing.T) {
	// 2048x2048 doubles = 32 MiB per matrix, beyond the 16 MiB shared
	// memory of the Xentium platform.
	src := `
function r = f(x)
  m = zeros(2048, 2048)
  m(1, 1) = x
  r = m(1, 1)
endfunction`
	opt := DefaultOptions("f", []ir.ArgSpec{ir.ScalarArg()}, adl.XentiumPlatform(2))
	_, err := CompileSource(src, opt)
	if err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("err = %v", err)
	}
}
