package core

import (
	"fmt"
	"sort"
	"strings"
)

// Explain renders the cross-layer programming view of a compilation
// (paper §II-E): the optimization decisions of every tool-chain layer,
// application bottlenecks, and the artifacts hindering parallelization,
// presented so that end users who are not compiler experts can interact
// with the process.
func Explain(a *Artifacts) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== ARGO cross-layer report: %s on %s ===\n",
		a.Options.Entry, a.Options.Platform.Name)
	fmt.Fprintf(&sb, "\n[transformations] %s\n", a.Transform)
	fmt.Fprintf(&sb, "[feedback] placement/analysis rounds: %d\n", a.FeedbackRounds)
	if n := len(a.Parallel.Demoted); n > 0 {
		fmt.Fprintf(&sb, "[feedback] %d scratchpad buffers demoted to shared memory (cross-core sharing):\n", n)
		for _, v := range a.Parallel.Demoted {
			fmt.Fprintf(&sb, "    %s (%d bytes)\n", v.Name, v.SizeBytes())
		}
	}

	fmt.Fprintf(&sb, "\n[tasks] %d tasks, %d dependences\n", len(a.Graph.Nodes), len(a.Graph.Edges))
	for _, n := range a.Graph.Nodes {
		pl := a.Schedule.Placements[n.ID]
		fmt.Fprintf(&sb, "  task %-2d %-24s core %d  window [%8d, %8d)  wcet %8d  interference %8d  shared-accesses %d\n",
			n.ID, n.Label, pl.Core, a.System.Start[n.ID], a.System.Finish[n.ID],
			n.WCET[pl.Core], a.System.InterferencePerTask[n.ID], n.SharedAccesses)
	}

	fmt.Fprintf(&sb, "\n[schedule] policy %s, %d cores, schedule makespan %d\n",
		a.Schedule.Policy, a.Schedule.Cores, a.Schedule.Makespan)
	for c := 0; c < a.Schedule.Cores; c++ {
		ids := a.Schedule.CoreOrder(c)
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = fmt.Sprintf("%d", id)
		}
		fmt.Fprintf(&sb, "  core %d: [%s]\n", c, strings.Join(parts, " "))
	}

	fmt.Fprintf(&sb, "\n[wcet] sequential bound %d, system bound %d (+%d DMA), speedup %.2fx\n",
		a.SequentialWCET, a.System.Makespan, a.Parallel.PrologueCycles+a.Parallel.EpilogueCycles,
		a.WCETSpeedup())
	fmt.Fprintf(&sb, "[wcet] total interference %d cycles across %d fixpoint rounds\n",
		a.System.TotalInterference(), a.System.Iterations)

	// Per-pass instrumentation (where the compilation time went, and
	// which stages the pass cache skipped).
	if aggs := a.PassTrace.Aggregate(); len(aggs) > 0 {
		sb.WriteString("\n[passes]\n")
		for _, ag := range aggs {
			cache := ""
			if ag.CacheHits+ag.CacheMisses > 0 {
				cache = fmt.Sprintf("  cache %d hit / %d miss", ag.CacheHits, ag.CacheMisses)
			}
			fmt.Fprintf(&sb, "  %-12s runs %2d  wall %10s%s\n", ag.Pass, ag.Runs, ag.Wall, cache)
		}
	}

	// Static timeline of the analyzed windows.
	sb.WriteString("\n[timeline] analyzed task windows (interference-inflated)\n")
	sb.WriteString(windowTimeline(a, 96))

	// Bottleneck identification.
	fmt.Fprintf(&sb, "\n[bottlenecks]\n")
	type tb struct {
		id     int
		metric int64
		why    string
	}
	var bns []tb
	for _, n := range a.Graph.Nodes {
		pl := a.Schedule.Placements[n.ID]
		if a.System.Finish[n.ID] == a.System.Makespan {
			bns = append(bns, tb{n.ID, n.WCET[pl.Core], "finishes last (critical path end)"})
		}
	}
	var maxIntf int64 = -1
	maxIntfID := -1
	for t, x := range a.System.InterferencePerTask {
		if x > maxIntf {
			maxIntf, maxIntfID = x, t
		}
	}
	if maxIntf > 0 {
		bns = append(bns, tb{maxIntfID, maxIntf, "largest shared-resource interference"})
	}
	sort.Slice(bns, func(i, j int) bool { return bns[i].id < bns[j].id })
	if len(bns) == 0 {
		sb.WriteString("  none identified\n")
	}
	for _, b := range bns {
		fmt.Fprintf(&sb, "  task %d (%s): %s (%d cycles)\n", b.id, a.Graph.Nodes[b.id].Label, b.why, b.metric)
	}
	if len(a.Graph.Nodes) == 1 {
		sb.WriteString("  single task: no parallelism extracted — consider enabling loop fission\n")
	}
	return sb.String()
}

// windowTimeline draws the analyzed (static) task windows per core.
func windowTimeline(a *Artifacts, width int) string {
	span := a.System.Makespan
	if span <= 0 {
		return "  (empty)\n"
	}
	scale := float64(width) / float64(span)
	var sb strings.Builder
	for c := 0; c < a.Schedule.Cores; c++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for t := range a.Input.Tasks {
			if a.Schedule.Placements[t].Core != c {
				continue
			}
			lo := int(float64(a.System.Start[t]) * scale)
			hi := int(float64(a.System.Finish[t]) * scale)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi && i < width; i++ {
				row[i] = '#'
			}
			for i, ch := range fmt.Sprintf("%d", t) {
				if lo+i <= hi && lo+i < width {
					row[lo+i] = byte(ch)
				}
			}
		}
		fmt.Fprintf(&sb, "  core %d |%s|\n", c, string(row))
	}
	return sb.String()
}
