package transform

import (
	"argo/internal/ir"
)

// ParallelizeLoops chunks top-level for loops into up to k index-set
// pieces (the data-parallel task extraction step): each chunk becomes a
// separate task for the HTG, and the interval dependence test recognizes
// chunks writing disjoint array regions as independent.
//
// Index-set splitting is always semantics-preserving (chunks stay in
// original order); chunking is *applied* only where it can pay off:
//
//   - constant bounds and at least 2 iterations per chunk,
//   - no loose break/continue,
//   - every scalar the body writes is iteration-private
//     (defined-before-use), so chunks don't serialize on accumulators.
//
// Returns the number of loops chunked.
func ParallelizeLoops(prog *ir.Program, k int) int {
	if k < 2 {
		return 0
	}
	n := 0
	var out []ir.Stmt
	for _, s := range prog.Entry.Body {
		loop, ok := s.(*ir.For)
		if !ok {
			out = append(out, s)
			continue
		}
		// Never create chunks below 2 iterations; small loops get fewer
		// pieces than requested.
		kEff := k
		if loop.Trip/2 < kEff {
			kEff = loop.Trip / 2
		}
		if kEff < 2 || !chunkable(loop, kEff) {
			out = append(out, s)
			continue
		}
		chunks := chunkLoop(loop, kEff)
		if len(chunks) < 2 {
			out = append(out, s)
			continue
		}
		n++
		for _, c := range chunks {
			out = append(out, c)
		}
	}
	prog.Entry.Body = out
	return n
}

// chunkable decides whether chunking loop into k pieces is worthwhile.
func chunkable(loop *ir.For, k int) bool {
	if loop.Trip < 2*k {
		return false
	}
	if _, _, _, ok := constBounds(loop); !ok {
		return false
	}
	if hasLooseJumps(loop.Body) {
		return false
	}
	uses := ir.ComputeUses(loop.Body)
	// The body must write at least one matrix (otherwise it is a pure
	// scalar reduction; chunks would serialize on the accumulator).
	if len(uses.MatWrites) == 0 {
		return false
	}
	for v := range uses.ScalWrite {
		if v == loop.IVar {
			continue
		}
		if !definesBeforeUse(loop.Body, v) {
			return false
		}
	}
	return true
}

// chunkLoop splits loop into up to k nearly equal index-set pieces.
func chunkLoop(loop *ir.For, k int) []*ir.For {
	chunks := []*ir.For{loop}
	for len(chunks) < k {
		// Split the largest remaining chunk.
		bi, bt := -1, 0
		for i, c := range chunks {
			if c.Trip > bt {
				bi, bt = i, c.Trip
			}
		}
		if bt < 2 {
			break
		}
		parts, ok := IndexSetSplit(chunks[bi], chunks[bi].Trip/2)
		if !ok {
			break
		}
		chunks = append(chunks[:bi], append([]*ir.For{parts[0], parts[1]}, chunks[bi+1:]...)...)
	}
	return chunks
}
