package transform

import (
	"sort"

	"argo/internal/ir"
)

// SPMOptions parameterize WCET-directed scratchpad promotion with the
// relevant platform numbers (taken from the ADL by the tool-chain driver).
type SPMOptions struct {
	// CapacityBytes is the scratchpad capacity available for data.
	CapacityBytes int
	// SharedLatency and SPMLatency are worst-case per-element access
	// latencies (cycles) for shared memory and scratchpad.
	SharedLatency int
	SPMLatency    int
	// DMACostPerByte models the prologue/epilogue cost of staging a
	// buffer into/out of the scratchpad, in cycles per byte.
	DMACostPerByte float64
}

// SPMDecision reports the outcome of scratchpad promotion.
type SPMDecision struct {
	Promoted   []*ir.Var
	BytesUsed  int
	GainCycles int64 // estimated WCET cycles saved
	Candidates int
}

// PromoteScratchpad selects matrix variables to place in scratchpad
// memory, maximizing the estimated WCET gain under the capacity
// constraint (a 0/1 knapsack, solved exactly by dynamic programming over
// 8-byte words). Promotion sets Storage on the selected variables; the
// parallel-program construction stage may demote variables that end up
// shared between cores.
//
// The gain of promoting v is
//
//	accesses(v) * (SharedLatency - SPMLatency) - 2 * size(v) * DMACostPerByte
//
// where accesses(v) is the static worst-case access count and the DMA term
// accounts for staging in and out.
func PromoteScratchpad(prog *ir.Program, opt SPMOptions) SPMDecision {
	dec := SPMDecision{}
	if opt.CapacityBytes <= 0 || opt.SharedLatency <= opt.SPMLatency {
		return dec
	}
	counts := ir.CountAccesses(prog.Entry.Body)
	type cand struct {
		v     *ir.Var
		words int
		gain  int64
	}
	var cands []cand
	for _, v := range prog.MatrixVars() {
		if v.Storage != ir.StorageShared {
			continue
		}
		acc := counts.Total(v)
		if acc == 0 {
			continue
		}
		gain := acc*int64(opt.SharedLatency-opt.SPMLatency) - int64(2*float64(v.SizeBytes())*opt.DMACostPerByte)
		if gain <= 0 {
			continue
		}
		cands = append(cands, cand{v: v, words: v.Elems(), gain: gain})
	}
	dec.Candidates = len(cands)
	if len(cands) == 0 {
		return dec
	}
	// Deterministic order for reproducible ties.
	sort.Slice(cands, func(i, j int) bool { return cands[i].v.Name < cands[j].v.Name })
	capWords := opt.CapacityBytes / 8
	// Exact 0/1 knapsack when the DP table is affordable, greedy
	// density-ordered fallback otherwise.
	const dpLimit = 4 << 20
	if len(cands)*(capWords+1) <= dpLimit {
		best := make([]int64, capWords+1)
		take := make([][]bool, len(cands))
		for i, c := range cands {
			take[i] = make([]bool, capWords+1)
			for w := capWords; w >= c.words; w-- {
				if cand := best[w-c.words] + c.gain; cand > best[w] {
					best[w] = cand
					take[i][w] = true
				}
			}
		}
		w := capWords
		for i := len(cands) - 1; i >= 0; i-- {
			if take[i][w] {
				dec.Promoted = append(dec.Promoted, cands[i].v)
				dec.GainCycles += cands[i].gain
				dec.BytesUsed += cands[i].words * 8
				w -= cands[i].words
			}
		}
	} else {
		sort.SliceStable(cands, func(i, j int) bool {
			return float64(cands[i].gain)/float64(cands[i].words) > float64(cands[j].gain)/float64(cands[j].words)
		})
		left := capWords
		for _, c := range cands {
			if c.words <= left {
				dec.Promoted = append(dec.Promoted, c.v)
				dec.GainCycles += c.gain
				dec.BytesUsed += c.words * 8
				left -= c.words
			}
		}
	}
	for _, v := range dec.Promoted {
		v.Storage = ir.StorageSPM
	}
	return dec
}

// DemoteToShared reverts variables to shared storage (used by the
// parallel-program construction stage when a promoted variable turns out
// to be accessed by tasks mapped to different cores).
func DemoteToShared(vars []*ir.Var) {
	for _, v := range vars {
		if v.Storage == ir.StorageSPM {
			v.Storage = ir.StorageShared
		}
	}
}
