package transform

import (
	"fmt"

	"argo/internal/ir"
)

// Options selects which predictability transformations the pipeline
// applies, in the fixed order: fold, fission, fusion, unroll, tile, SPM.
type Options struct {
	Fold bool
	// Hoist moves loop-invariant scalar assignments out of loops
	// (a direct WCET reduction: their cost leaves the trip multiplier).
	Hoist   bool
	Fission bool
	Fusion  bool
	// UnrollFactor unrolls every innermost loop by this factor when > 1.
	UnrollFactor int
	// TileI/TileJ tile 2-deep perfect nests when both are > 0.
	TileI, TileJ int
	// ElideInits removes initialization sweeps that are fully
	// overwritten before any read (dead zeros()/ones() fills).
	ElideInits bool
	// ParallelChunks chunks data-parallel top-level loops into up to
	// this many index-set pieces (the task-parallel decomposition knob;
	// typically set to the core count).
	ParallelChunks int
	// SPM enables scratchpad promotion with the given options.
	SPM *SPMOptions
}

// DefaultOptions is the tool-chain's standard predictability pipeline:
// constant folding + loop fission (fine-grain task decomposition).
// Scratchpad promotion is added by the driver once platform numbers are
// known.
func DefaultOptions() Options {
	return Options{Fold: true, Fission: true}
}

// Report summarizes what the pipeline did.
type Report struct {
	Folded        int
	Hoisted       int
	ElidedInits   int
	FissionSplits int
	Fusions       int
	Unrolled      int
	Tiled         int
	Chunked       int
	SPM           SPMDecision
}

// String renders the report compactly.
func (r Report) String() string {
	return fmt.Sprintf("fold=%d hoist=%d elide=%d fission=%d fusion=%d unroll=%d tile=%d chunked=%d spm={vars=%d bytes=%d gain=%d}",
		r.Folded, r.Hoisted, r.ElidedInits, r.FissionSplits, r.Fusions, r.Unrolled, r.Tiled, r.Chunked,
		len(r.SPM.Promoted), r.SPM.BytesUsed, r.SPM.GainCycles)
}

// Apply runs the selected transformations on prog in place, walking
// the pass registry in its fixed default order (see Registry). The
// pass-manager pipeline in internal/core runs the same registry one
// pass at a time; Apply is the plain one-call form.
func Apply(prog *ir.Program, opt Options) Report {
	var rep Report
	for _, p := range Plan(opt) {
		p.Run(prog, opt, &rep)
	}
	return rep
}

// UnrollInnermost unrolls every innermost for loop of the entry function
// by factor k, returning the number of loops unrolled.
func UnrollInnermost(prog *ir.Program, k int) int {
	n := 0
	prog.Entry.Body = unrollBlock(prog.Entry.Body, k, &n)
	return n
}

func unrollBlock(stmts []ir.Stmt, k int, n *int) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.For:
			if isInnermost(st) {
				if repl, ok := Unroll(st, k); ok {
					*n++
					out = append(out, repl...)
					continue
				}
				out = append(out, st)
				continue
			}
			st.Body = unrollBlock(st.Body, k, n)
			out = append(out, st)
		case *ir.While:
			st.Body = unrollBlock(st.Body, k, n)
			out = append(out, st)
		case *ir.If:
			st.Then = unrollBlock(st.Then, k, n)
			st.Else = unrollBlock(st.Else, k, n)
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out
}

// isInnermost reports whether loop contains no nested loops.
func isInnermost(loop *ir.For) bool {
	inner := false
	ir.WalkStmts(loop.Body, func(s ir.Stmt) bool {
		switch s.(type) {
		case *ir.For, *ir.While:
			inner = true
			return false
		}
		return true
	})
	return !inner
}

// TileTopLevel tiles every top-level 2-deep perfect nest of the entry
// function, returning the number of nests tiled.
func TileTopLevel(prog *ir.Program, ti, tj int) int {
	n := 0
	var out []ir.Stmt
	for _, s := range prog.Entry.Body {
		if loop, ok := s.(*ir.For); ok {
			if tiled, did := Tile(loop, ti, tj, prog); did {
				n++
				out = append(out, tiled)
				continue
			}
		}
		out = append(out, s)
	}
	prog.Entry.Body = out
	return n
}

// LabelLoops assigns stable labels L0, L1, ... to every loop of the entry
// function in program order (used by reports and by the cross-layer
// explanation artifacts).
func LabelLoops(prog *ir.Program) {
	n := 0
	ir.WalkStmts(prog.Entry.Body, func(s ir.Stmt) bool {
		if f, ok := s.(*ir.For); ok && f.Label == "" {
			f.Label = fmt.Sprintf("L%d", n)
			n++
		}
		return true
	})
}
