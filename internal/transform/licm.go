package transform

import (
	"argo/internal/ir"
)

// HoistInvariants performs loop-invariant code motion on scalar
// assignments: a top-level assignment in a loop body whose right-hand
// side depends on nothing the loop writes is moved in front of the loop,
// removing its cost from the trip-count multiplier (a direct WCET
// reduction on the deterministic core model). Returns the number of
// statements hoisted.
//
// Hoisting conditions (all checked):
//   - the loop has at least one guaranteed iteration (static Trip >= 1)
//     and contains no loose break/continue,
//   - the assignment's source reads no scalar written anywhere in the
//     loop (including the induction variable) and no matrix the loop
//     writes,
//   - its destination is written nowhere else in the loop and is not
//     read by any statement preceding the assignment.
func HoistInvariants(prog *ir.Program) int {
	n := 0
	prog.Entry.Body = hoistBlock(prog.Entry.Body, &n)
	return n
}

func hoistBlock(stmts []ir.Stmt, n *int) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.For:
			st.Body = hoistBlock(st.Body, n)
			hoisted, rest := hoistFromLoop(st)
			*n += len(hoisted)
			out = append(out, hoisted...)
			st.Body = rest
			out = append(out, st)
		case *ir.While:
			st.Body = hoistBlock(st.Body, n)
			out = append(out, st)
		case *ir.If:
			st.Then = hoistBlock(st.Then, n)
			st.Else = hoistBlock(st.Else, n)
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out
}

// hoistFromLoop extracts hoistable assignments from the loop body.
func hoistFromLoop(loop *ir.For) (hoisted, rest []ir.Stmt) {
	if loop.Trip < 1 || hasLooseJumps(loop.Body) {
		return nil, loop.Body
	}
	bodyUses := ir.ComputeUses(loop.Body)
	writtenScalars := map[*ir.Var]bool{loop.IVar: true}
	for v := range bodyUses.ScalWrite {
		writtenScalars[v] = true
	}
	// Count scalar writes per variable to enforce single assignment.
	writeCount := map[*ir.Var]int{}
	ir.WalkStmts(loop.Body, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.AssignScalar:
			writeCount[st.Dst]++
		case *ir.For:
			writeCount[st.IVar] += 2 // loops rebind their ivar repeatedly
		}
		return true
	})
	readBefore := map[*ir.Var]bool{}
	for _, s := range loop.Body {
		as, isAssign := s.(*ir.AssignScalar)
		movable := false
		if isAssign && writeCount[as.Dst] == 1 && !readBefore[as.Dst] {
			srcUses := ir.NewUseSets()
			srcUses.AddExprUses(as.Src)
			movable = true
			for v := range srcUses.ScalReads {
				if writtenScalars[v] {
					movable = false
				}
			}
			for v := range srcUses.MatReads {
				if bodyUses.MatWrites[v] {
					movable = false
				}
			}
		}
		if movable {
			hoisted = append(hoisted, as)
		} else {
			rest = append(rest, s)
		}
		// Track reads occurring from this statement on.
		u := ir.ComputeUses([]ir.Stmt{s})
		for v := range u.ScalReads {
			readBefore[v] = true
		}
	}
	return hoisted, rest
}

// Interchange swaps the two outermost loops of a perfect 2-deep (or
// deeper) nest when every matrix written in the nest is
// iteration-private, making all iteration orders equivalent. Returns the
// new outer loop and true, or nil and false.
func Interchange(loop *ir.For) (*ir.For, bool) {
	nest := perfectNest(loop)
	if len(nest.loops) < 2 {
		return nil, false
	}
	outer, inner := nest.loops[0], nest.loops[1]
	body := inner.Body
	if hasLooseJumps(body) {
		return nil, false
	}
	// Bounds of the inner loop must not depend on the outer ivar.
	hdr := ir.NewUseSets()
	hdr.AddExprUses(inner.Lo)
	hdr.AddExprUses(inner.Step)
	hdr.AddExprUses(inner.Hi)
	if hdr.ScalReads[outer.IVar] {
		return nil, false
	}
	ivars := map[*ir.Var]bool{}
	for _, l := range nest.loops {
		ivars[l.IVar] = true
	}
	uses := ir.ComputeUses(body)
	for v := range uses.MatWrites {
		if !fullRankPrivate(body, v, ivars) {
			return nil, false
		}
	}
	for v := range uses.ScalWrite {
		if ivars[v] {
			continue
		}
		if uses.ScalReads[v] && !definesBeforeUse(body, v) {
			return nil, false
		}
	}
	newInner := &ir.For{
		IVar: outer.IVar, Lo: ir.CloneExpr(outer.Lo), Step: ir.CloneExpr(outer.Step),
		Hi: ir.CloneExpr(outer.Hi), Trip: outer.Trip, Body: ir.CloneStmts(body),
	}
	newOuter := &ir.For{
		IVar: inner.IVar, Lo: ir.CloneExpr(inner.Lo), Step: ir.CloneExpr(inner.Step),
		Hi: ir.CloneExpr(inner.Hi), Trip: inner.Trip, Body: []ir.Stmt{newInner},
		Label: loop.Label,
	}
	return newOuter, true
}
