package transform

import (
	"argo/internal/ir"
)

// ElideDeadInits removes top-level initialization sweeps (the loops
// lowered from zeros()/ones()) whose matrix is fully overwritten by a
// later unconditional full-cover writer before any element is read.
// Every element the init wrote is dead, so the sweep is pure WCET waste —
// a real saving since the lowering materializes one fill per allocated
// buffer. Returns the number of sweeps removed.
//
// Cover is decided structurally (an under-approximation, as soundness
// requires): a full-cover writer is a unit-step 2-deep nest over exactly
// 1..Rows x 1..Cols containing an unconditional store v[i, j] at the
// innermost level.
func ElideDeadInits(prog *ir.Program) int {
	body := prog.Entry.Body
	removed := 0
	var out []ir.Stmt
	for i, s := range body {
		v, isFill := fillTarget(s)
		if !isFill || !deadBeforeRewrite(body[i+1:], v) {
			out = append(out, s)
			continue
		}
		removed++
	}
	prog.Entry.Body = out
	return removed
}

// fillTarget reports whether s is a pure initialization sweep: a
// full-cover writer of exactly one matrix that reads no matrices and
// leaves no live scalars behind.
func fillTarget(s ir.Stmt) (*ir.Var, bool) {
	uses := ir.ComputeUses([]ir.Stmt{s})
	if len(uses.MatWrites) != 1 || len(uses.MatReads) != 0 {
		return nil, false
	}
	var v *ir.Var
	for w := range uses.MatWrites {
		v = w
	}
	for sc := range uses.ScalWrite {
		if sc.Result {
			return nil, false
		}
	}
	if !fullCoverWriter(s, v) {
		return nil, false
	}
	return v, true
}

// fullCoverWriter matches the canonical dense-sweep shape:
//
//	for i = 1:1:Rows { ... for j = 1:1:Cols { ...; v[i, j] = e; ... } ... }
//
// with every construct on the store's path an unconditional constant-
// bound For. This definitely writes every element of v.
func fullCoverWriter(s ir.Stmt, v *ir.Var) bool {
	outer, ok := s.(*ir.For)
	if !ok || !unitRange(outer, v.Rows) {
		return false
	}
	for _, inner := range topLevelFors(outer.Body) {
		if !unitRange(inner, v.Cols) {
			continue
		}
		for _, bs := range inner.Body {
			st, isStore := bs.(*ir.Store)
			if !isStore || st.Dst != v || len(st.Idx) != 2 {
				continue
			}
			r1, ok1 := st.Idx[0].(*ir.VarRef)
			r2, ok2 := st.Idx[1].(*ir.VarRef)
			if ok1 && ok2 && r1.V == outer.IVar && r2.V == inner.IVar {
				return true
			}
		}
	}
	return false
}

// unitRange reports whether loop iterates exactly 1..n with step 1.
func unitRange(loop *ir.For, n int) bool {
	lo, step, hi, ok := constBounds(loop)
	return ok && lo == 1 && step == 1 && hi == float64(n) && loop.Trip == n
}

// topLevelFors returns the For statements directly in stmts.
func topLevelFors(stmts []ir.Stmt) []*ir.For {
	var out []*ir.For
	for _, s := range stmts {
		if f, ok := s.(*ir.For); ok {
			out = append(out, f)
		}
	}
	return out
}

// deadBeforeRewrite reports whether, scanning forward, v is fully
// rewritten by an unconditional full-cover writer before any read of v.
func deadBeforeRewrite(rest []ir.Stmt, v *ir.Var) bool {
	for _, s := range rest {
		uses := ir.ComputeUses([]ir.Stmt{s})
		if uses.MatReads[v] {
			return false
		}
		if uses.MatWrites[v] {
			// A full-cover rewrite kills the init; any other writer may
			// leave init values live for later readers.
			return fullCoverWriter(s, v)
		}
	}
	// Never read nor rewritten: dead unless it is a program result.
	return !v.Result
}
