package transform

import (
	"math"

	"argo/internal/ir"
)

// Unroll replaces loop with an unrolled version of factor k (plus a
// remainder loop when the trip count is not divisible by k). It returns
// the replacement statements and true, or nil and false when the loop is
// not unrollable (non-constant bounds, jumps binding to it, or a body
// writing the induction variable).
func Unroll(loop *ir.For, k int) ([]ir.Stmt, bool) {
	if k < 2 || loop.Trip == 0 {
		return nil, false
	}
	lo, step, hi, ok := constBounds(loop)
	if !ok || step == 0 {
		return nil, false
	}
	if hasLooseJumps(loop.Body) || writesVar(loop.Body, loop.IVar) {
		return nil, false
	}
	trip := loop.Trip
	if k > trip {
		k = trip
	}
	mainTrips := trip / k
	rem := trip - mainTrips*k
	var out []ir.Stmt
	if mainTrips > 0 {
		var body []ir.Stmt
		for t := 0; t < k; t++ {
			clone := ir.CloneStmts(loop.Body)
			if t > 0 {
				ivExpr := &ir.Bin{Op: ir.OpAdd, X: &ir.VarRef{V: loop.IVar}, Y: &ir.Const{Val: float64(t) * step}}
				clone = ir.SubstituteVarStmts(clone, loop.IVar, ivExpr)
			}
			body = append(body, clone...)
		}
		mainHi := lo + float64(mainTrips*k-1)*step
		out = append(out, &ir.For{
			IVar:  loop.IVar,
			Lo:    &ir.Const{Val: lo},
			Step:  &ir.Const{Val: step * float64(k)},
			Hi:    &ir.Const{Val: mainHi},
			Trip:  mainTrips,
			Body:  body,
			Label: loop.Label,
		})
	}
	if rem > 0 {
		remLo := lo + float64(mainTrips*k)*step
		out = append(out, &ir.For{
			IVar: loop.IVar,
			Lo:   &ir.Const{Val: remLo},
			Step: &ir.Const{Val: step},
			Hi:   &ir.Const{Val: hi},
			Trip: rem,
			Body: ir.CloneStmts(loop.Body),
		})
	}
	return out, true
}

// IndexSetSplit splits loop into two consecutive loops covering the first
// m iterations and the remaining ones (index-set splitting, ref [10] of
// the paper). Always semantics-preserving; returns false when bounds are
// not constant or m is out of range.
func IndexSetSplit(loop *ir.For, m int) ([]*ir.For, bool) {
	if m <= 0 || m >= loop.Trip {
		return nil, false
	}
	lo, step, hi, ok := constBounds(loop)
	if !ok || step == 0 {
		return nil, false
	}
	firstHi := lo + float64(m-1)*step
	secondLo := lo + float64(m)*step
	first := &ir.For{
		IVar: loop.IVar, Lo: &ir.Const{Val: lo}, Step: &ir.Const{Val: step},
		Hi: &ir.Const{Val: firstHi}, Trip: m, Body: ir.CloneStmts(loop.Body),
		Label: loop.Label,
	}
	second := &ir.For{
		IVar: loop.IVar, Lo: &ir.Const{Val: secondLo}, Step: &ir.Const{Val: step},
		Hi: &ir.Const{Val: hi}, Trip: loop.Trip - m, Body: ir.CloneStmts(loop.Body),
	}
	return []*ir.For{first, second}, true
}

// Fuse merges two adjacent loops with identical constant bounds into one
// ("loop fusion"). Legality: running b's iteration i immediately after
// a's iteration i (instead of after all of a) is safe when every
// conflicting matrix variable is iteration-private, and no scalar value
// flows from a to b across iterations.
func Fuse(a, b *ir.For) (*ir.For, bool) {
	loA, stA, hiA, okA := constBounds(a)
	loB, stB, hiB, okB := constBounds(b)
	if !okA || !okB || loA != loB || stA != stB || hiA != hiB || a.Trip != b.Trip {
		return nil, false
	}
	if hasLooseJumps(a.Body) || hasLooseJumps(b.Body) {
		return nil, false
	}
	bodyB := b.Body
	if a.IVar != b.IVar {
		if writesVar(b.Body, b.IVar) || writesVar(a.Body, a.IVar) {
			return nil, false
		}
		bodyB = ir.SubstituteVarStmts(bodyB, b.IVar, &ir.VarRef{V: a.IVar})
	}
	whole := append(append([]ir.Stmt{}, a.Body...), bodyB...)
	ivars := map[*ir.Var]bool{a.IVar: true}
	// Include shared inner perfect-nest ivars for the privacy test.
	for _, l := range perfectNest(a).loops {
		ivars[l.IVar] = true
	}
	for _, l := range perfectNest(b).loops {
		ivars[l.IVar] = true
	}
	uA := ir.ComputeUses(a.Body)
	uB := ir.ComputeUses(bodyB)
	if !reorderLegal(whole, uA, uB, ivars) {
		return nil, false
	}
	// No scalar dataflow between the two bodies (beyond privatizable).
	for v := range uA.ScalWrite {
		if ivars[v] {
			continue
		}
		if (uB.ScalReads[v] && !definesBeforeUse(bodyB, v)) || uB.ScalWrite[v] {
			if uB.ScalWrite[v] && definesBeforeUse(bodyB, v) && !uA.ScalReads[v] {
				continue
			}
			return nil, false
		}
	}
	for v := range uB.ScalWrite {
		if ivars[v] {
			continue
		}
		if uA.ScalReads[v] && !definesBeforeUse(a.Body, v) {
			return nil, false
		}
	}
	return &ir.For{
		IVar: a.IVar, Lo: ir.CloneExpr(a.Lo), Step: ir.CloneExpr(a.Step),
		Hi: ir.CloneExpr(a.Hi), Trip: a.Trip,
		Body:  append(ir.CloneStmts(a.Body), ir.CloneStmts(bodyB)...),
		Label: a.Label,
	}, true
}

// FuseAll greedily fuses adjacent fusable top-level loops of the entry
// function and returns the number of fusions performed.
func FuseAll(prog *ir.Program) int {
	fused := 0
	body := prog.Entry.Body
	var out []ir.Stmt
	for i := 0; i < len(body); i++ {
		cur, ok := body[i].(*ir.For)
		if !ok {
			out = append(out, body[i])
			continue
		}
		for i+1 < len(body) {
			next, ok2 := body[i+1].(*ir.For)
			if !ok2 {
				break
			}
			merged, did := Fuse(cur, next)
			if !did {
				break
			}
			cur = merged
			fused++
			i++
		}
		out = append(out, cur)
	}
	prog.Entry.Body = out
	return fused
}

// Tile rewrites a perfect 2-deep nest with unit steps into a tiled 4-deep
// nest with tile sizes ti x tj. Legality: every matrix variable written in
// the nest must be iteration-private (full-rank index signature), making
// all iteration reorderings valid. Returns false otherwise.
func Tile(loop *ir.For, ti, tj int, prog *ir.Program) (*ir.For, bool) {
	if ti < 1 || tj < 1 {
		return nil, false
	}
	nest := perfectNest(loop)
	if len(nest.loops) < 2 {
		return nil, false
	}
	outer, inner := nest.loops[0], nest.loops[1]
	// Only tile the outermost two loops; deeper nests keep their body.
	body := inner.Body
	loI, stI, hiI, okI := constBounds(outer)
	loJ, stJ, hiJ, okJ := constBounds(inner)
	if !okI || !okJ || stI != 1 || stJ != 1 {
		return nil, false
	}
	if hasLooseJumps(body) {
		return nil, false
	}
	ivars := map[*ir.Var]bool{}
	for _, l := range nest.loops {
		ivars[l.IVar] = true
	}
	uses := ir.ComputeUses(body)
	for v := range uses.MatWrites {
		if !fullRankPrivate(body, v, ivars) {
			return nil, false
		}
	}
	// Scalar accumulations across iterations also block tiling.
	for v := range uses.ScalWrite {
		if ivars[v] {
			continue
		}
		if uses.ScalReads[v] && !definesBeforeUse(body, v) {
			return nil, false
		}
	}
	iiV := prog.FreshVar("%ii", 1, 1, true)
	jjV := prog.FreshVar("%jj", 1, 1, true)
	minExpr := func(a ir.Expr, b float64) ir.Expr {
		return &ir.Intrinsic{Name: "min", Args: []ir.Expr{a, &ir.Const{Val: b}}}
	}
	innerJ := &ir.For{
		IVar: inner.IVar,
		Lo:   &ir.VarRef{V: jjV},
		Step: &ir.Const{Val: 1},
		Hi:   minExpr(&ir.Bin{Op: ir.OpAdd, X: &ir.VarRef{V: jjV}, Y: &ir.Const{Val: float64(tj - 1)}}, hiJ),
		Trip: tj,
		Body: ir.CloneStmts(body),
	}
	innerI := &ir.For{
		IVar: outer.IVar,
		Lo:   &ir.VarRef{V: iiV},
		Step: &ir.Const{Val: 1},
		Hi:   minExpr(&ir.Bin{Op: ir.OpAdd, X: &ir.VarRef{V: iiV}, Y: &ir.Const{Val: float64(ti - 1)}}, hiI),
		Trip: ti,
		Body: []ir.Stmt{innerJ},
	}
	tileJ := &ir.For{
		IVar: jjV, Lo: &ir.Const{Val: loJ}, Step: &ir.Const{Val: float64(tj)},
		Hi: &ir.Const{Val: hiJ}, Trip: ceilDiv(inner.Trip, tj),
		Body: []ir.Stmt{innerI},
	}
	tileI := &ir.For{
		IVar: iiV, Lo: &ir.Const{Val: loI}, Step: &ir.Const{Val: float64(ti)},
		Hi: &ir.Const{Val: hiI}, Trip: ceilDiv(outer.Trip, ti),
		Body:  []ir.Stmt{tileJ},
		Label: loop.Label,
	}
	return tileI, true
}

func ceilDiv(a, b int) int { return int(math.Ceil(float64(a) / float64(b))) }
