package transform

import (
	"math"
	"math/rand"
	"testing"

	"argo/internal/ir"
	"argo/internal/scil"
)

// TestDifferentialRandomPrograms is the front-end fuzzing battery: random
// programs in the analysable subset are executed through (1) the scil
// reference interpreter, (2) the lowered IR, and (3) the IR after every
// transformation configuration — all three must agree exactly.
func TestDifferentialRandomPrograms(t *testing.T) {
	cfgs := []Options{
		{Fold: true},
		{Fission: true},
		{Fold: true, Fission: true},
		{UnrollFactor: 2},
		{TileI: 2, TileJ: 3},
		{ParallelChunks: 3},
		{Fold: true, Fission: true, ParallelChunks: 2, UnrollFactor: 3},
		{Fusion: true, Fold: true},
		{ElideInits: true},
		{Fold: true, Hoist: true, ElideInits: true, Fission: true, ParallelChunks: 2},
	}
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		prog := scil.Generate(rng, scil.DefaultGenConfig())
		cfg := scil.DefaultGenConfig()

		// Inputs: a deterministic matrix argument.
		in := make([]float64, cfg.Rows*cfg.Cols)
		for i := range in {
			in[i] = math.Round(rng.Float64()*40-20) / 2
		}
		sArg := scil.MatrixOf(cfg.Rows, cfg.Cols, in)
		want, err := scil.NewInterp(prog).Call("fuzz", sArg)
		if err != nil {
			t.Fatalf("seed %d: scil run: %v\n%s", seed, err, scil.GenerateSource(rand.New(rand.NewSource(int64(seed))), cfg))
		}
		irProg, err := ir.Lower(prog, "fuzz", []ir.ArgSpec{ir.MatrixArg(cfg.Rows, cfg.Cols)})
		if err != nil {
			t.Fatalf("seed %d: lower: %v\n%s", seed, err, scil.GenerateSource(rand.New(rand.NewSource(int64(seed))), cfg))
		}
		check := func(label string, p *ir.Program) {
			got, err := ir.NewExec(p, nil).Run([][]float64{in})
			if err != nil {
				t.Fatalf("seed %d %s: ir run: %v", seed, label, err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d %s: %d results vs %d", seed, label, len(got), len(want))
			}
			for ri := range want {
				w := want[ri]
				for r := 1; r <= w.Rows; r++ {
					for c := 1; c <= w.Cols; c++ {
						wv := w.At(r, c)
						gv := got[ri][(r-1)*w.Cols+(c-1)]
						if math.IsNaN(wv) && math.IsNaN(gv) {
							continue
						}
						if wv != gv && math.Abs(wv-gv) > 1e-9*(1+math.Abs(wv)) {
							t.Fatalf("seed %d %s: result %d (%d,%d): ir %g vs scil %g\n%s",
								seed, label, ri, r, c, gv, wv,
								scil.GenerateSource(rand.New(rand.NewSource(int64(seed))), cfg))
						}
					}
				}
			}
		}
		check("plain", irProg)
		for ci, topt := range cfgs {
			x := &ir.Program{Vars: irProg.Vars}
			entry := *irProg.Entry
			entry.Body = ir.CloneStmts(irProg.Entry.Body)
			x.Entry = &entry
			Apply(x, topt)
			check(rcfg(topt)+"#"+string(rune('a'+ci)), x)
		}
	}
}

// TestFuzzGeneratorAlwaysAnalysable ensures every generated program
// survives the WCET-mode checker and the lowering's static requirements.
func TestFuzzGeneratorAlwaysAnalysable(t *testing.T) {
	for seed := 100; seed < 160; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		prog := scil.Generate(rng, scil.DefaultGenConfig()) // panics on check failure
		cfg := scil.DefaultGenConfig()
		if _, err := ir.Lower(prog, "fuzz", []ir.ArgSpec{ir.MatrixArg(cfg.Rows, cfg.Cols)}); err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}
	}
}
