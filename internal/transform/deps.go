// Package transform implements the predictability-enhancing,
// WCET-oriented program transformations of the ARGO tool-chain (paper
// §II-B and §III-C): loop fission (distribution), loop fusion, loop
// unrolling, index-set splitting (Griebl/Feautrier/Lengauer), loop tiling,
// constant folding, and WCET-directed scratchpad promotion
// (Chattopadhyay/Roychoudhury-style SPM allocation).
//
// All structural transformations are semantics-preserving; the test suite
// verifies each one against the IR interpreter on randomized inputs.
// Legality uses a conservative dependence test: a matrix variable written
// inside a loop nest blocks reordering unless every access to it in the
// nest uses one fixed index vector made of the nest's induction variables
// (full-rank, zero-offset), which makes each iteration's footprint
// private.
package transform

import (
	"argo/internal/ir"
)

// nestInfo describes a perfect loop nest: the chain of loops from the
// outermost one inward while each body is exactly one nested For, plus the
// innermost body.
type nestInfo struct {
	loops []*ir.For
	body  []ir.Stmt
}

// perfectNest unwraps loop into its maximal perfect nest.
func perfectNest(loop *ir.For) nestInfo {
	loops := []*ir.For{loop}
	body := loop.Body
	for len(body) == 1 {
		inner, ok := body[0].(*ir.For)
		if !ok {
			break
		}
		loops = append(loops, inner)
		body = inner.Body
	}
	return nestInfo{loops: loops, body: body}
}

// ivarSet returns the set of induction variables of the nest.
func (n nestInfo) ivarSet() map[*ir.Var]bool {
	s := make(map[*ir.Var]bool, len(n.loops))
	for _, l := range n.loops {
		s[l.IVar] = true
	}
	return s
}

// fullRankPrivate reports whether every access (read or write) to matrix
// variable v inside stmts uses one single index vector whose components
// are distinct induction variables from ivars (no offsets, no repeats).
// Under this condition each iteration of the nest touches a private
// element of v, so any iteration reordering or distribution is legal with
// respect to v.
func fullRankPrivate(stmts []ir.Stmt, v *ir.Var, ivars map[*ir.Var]bool) bool {
	var sig []*ir.Var
	ok := true
	record := func(idx []ir.Expr) {
		if !ok {
			return
		}
		cur := make([]*ir.Var, len(idx))
		seen := map[*ir.Var]bool{}
		for i, e := range idx {
			ref, isRef := e.(*ir.VarRef)
			if !isRef || !ivars[ref.V] || seen[ref.V] {
				ok = false
				return
			}
			seen[ref.V] = true
			cur[i] = ref.V
		}
		if sig == nil {
			sig = cur
			return
		}
		if len(sig) != len(cur) {
			ok = false
			return
		}
		for i := range sig {
			if sig[i] != cur[i] {
				ok = false
				return
			}
		}
	}
	var visitExpr func(e ir.Expr)
	visitExpr = func(e ir.Expr) {
		ir.WalkExprs(e, func(sub ir.Expr) {
			if ix, isIx := sub.(*ir.Index); isIx && ix.V == v {
				record(ix.Idx)
			}
		})
	}
	ir.WalkStmts(stmts, func(s ir.Stmt) bool {
		for _, e := range ir.StmtExprs(s) {
			visitExpr(e)
		}
		if st, isStore := s.(*ir.Store); isStore && st.Dst == v {
			record(st.Idx)
		}
		return ok
	})
	return ok
}

// conflictingMatrices returns matrix variables with a dependence between
// regions a and b (write in one, any access in the other).
func conflictingMatrices(a, b *ir.UseSets) map[*ir.Var]bool {
	out := map[*ir.Var]bool{}
	for v := range a.MatWrites {
		if b.MatReads[v] || b.MatWrites[v] {
			out[v] = true
		}
	}
	for v := range b.MatWrites {
		if a.MatReads[v] || a.MatWrites[v] {
			out[v] = true
		}
	}
	return out
}

// reorderLegal reports whether regions a and b inside a nest may be
// separated into distinct sweeps of the nest (or have their iterations
// reordered against each other): every conflicting matrix variable must be
// iteration-private under the nest's induction variables. Scalar conflicts
// must be resolved by the caller (replication or privatization).
func reorderLegal(whole []ir.Stmt, a, b *ir.UseSets, ivars map[*ir.Var]bool) bool {
	for v := range conflictingMatrices(a, b) {
		if !fullRankPrivate(whole, v, ivars) {
			return false
		}
	}
	return true
}

// writesVar reports whether stmts may write scalar v.
func writesVar(stmts []ir.Stmt, v *ir.Var) bool {
	found := false
	ir.WalkStmts(stmts, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.AssignScalar:
			if st.Dst == v {
				found = true
			}
		case *ir.For:
			if st.IVar == v {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasLooseJumps reports whether stmts contain a Break or Continue that
// would bind to an enclosing loop (i.e., one not nested inside a loop
// within stmts themselves).
func hasLooseJumps(stmts []ir.Stmt) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Break, *ir.Continue:
			return true
		case *ir.If:
			if hasLooseJumps(st.Then) || hasLooseJumps(st.Else) {
				return true
			}
		case *ir.For, *ir.While:
			// Jumps inside nested loops bind to those loops.
		}
	}
	return false
}

// constOf extracts a compile-time constant from e.
func constOf(e ir.Expr) (float64, bool) {
	c, ok := e.(*ir.Const)
	if !ok {
		return 0, false
	}
	return c.Val, true
}

// constBounds extracts (lo, step, hi) when all three loop bounds are
// constants.
func constBounds(l *ir.For) (lo, step, hi float64, ok bool) {
	lo, ok1 := constOf(l.Lo)
	step, ok2 := constOf(l.Step)
	hi, ok3 := constOf(l.Hi)
	return lo, step, hi, ok1 && ok2 && ok3
}
