package transform

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"argo/internal/ir"
	"argo/internal/scil"
)

// compile lowers a scil source for testing.
func compile(t *testing.T, src, entry string, args ...ir.ArgSpec) *ir.Program {
	t.Helper()
	p, err := scil.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := scil.Check(p, scil.CheckWCET); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	prog, err := ir.Lower(p, entry, args)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

// randInputs builds deterministic pseudo-random inputs for the program.
func randInputs(prog *ir.Program, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var out [][]float64
	for _, p := range prog.Entry.Params {
		buf := make([]float64, p.Elems())
		for i := range buf {
			buf[i] = math.Round(rng.Float64()*200-100) / 4
		}
		out = append(out, buf)
	}
	return out
}

// assertSameBehaviour runs both programs on identical random inputs and
// compares all results.
func assertSameBehaviour(t *testing.T, orig, xformed *ir.Program, seeds ...int64) {
	t.Helper()
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 7, 42}
	}
	for _, seed := range seeds {
		in := randInputs(orig, seed)
		want, err := ir.NewExec(orig, nil).Run(in)
		if err != nil {
			t.Fatalf("seed %d: original run: %v", seed, err)
		}
		got, err := ir.NewExec(xformed, nil).Run(in)
		if err != nil {
			t.Fatalf("seed %d: transformed run: %v", seed, err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: result count %d vs %d", seed, len(got), len(want))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("seed %d result %d: length %d vs %d", seed, i, len(got[i]), len(want[i]))
			}
			for k := range want[i] {
				w, g := want[i][k], got[i][k]
				if math.IsNaN(w) && math.IsNaN(g) {
					continue
				}
				if math.Abs(w-g) > 1e-9*(1+math.Abs(w)) {
					t.Fatalf("seed %d result %d elem %d: %g vs %g", seed, i, k, g, w)
				}
			}
		}
	}
}

// cloneProg deep-copies the entry body so transforms don't affect the
// original (variables are shared, which is fine for execution).
func cloneProg(p *ir.Program) *ir.Program {
	cp := *p
	entry := *p.Entry
	entry.Body = ir.CloneStmts(p.Entry.Body)
	cp.Entry = &entry
	return &cp
}

const fissionSrc = `
function [edges, smooth] = f(img)
  h = size(img, 1)
  w = size(img, 2)
  edges = zeros(h, w)
  smooth = zeros(h, w)
  for i = 1:h
    for j = 1:w
      g = img(i, j) * 0.5
      edges(i, j) = g - 1
      smooth(i, j) = g + img(i, j) * 0.25
    end
  end
endfunction`

func TestFissionSplitsAndPreserves(t *testing.T) {
	orig := compile(t, fissionSrc, "f", ir.MatrixArg(8, 6))
	x := cloneProg(orig)
	created := FissionAll(x)
	if created == 0 {
		t.Fatal("expected fission to split the nest")
	}
	assertSameBehaviour(t, orig, x)
}

func TestFissionReplicatesScalarDefs(t *testing.T) {
	orig := compile(t, fissionSrc, "f", ir.MatrixArg(5, 5))
	x := cloneProg(orig)
	FissionAll(x)
	// The split nests must both compute g (redundant computation).
	loops := 0
	for _, s := range x.Entry.Body {
		if _, ok := s.(*ir.For); ok {
			loops++
		}
	}
	if loops < 4 { // 2 zeros fills + >= 2 split compute nests
		t.Fatalf("top-level loops after fission = %d", loops)
	}
}

func TestFissionRefusesReduction(t *testing.T) {
	// acc accumulates across iterations: distributing the two statements
	// would reorder reads of acc — must refuse to split them apart.
	src := `
function [r, m] = f(v)
  n = length(v)
  m = zeros(1, n)
  r = 0
  for i = 1:n
    r = r + v(i)
    m(1, i) = r
  end
endfunction`
	orig := compile(t, src, "f", ir.MatrixArg(1, 10))
	x := cloneProg(orig)
	FissionAll(x)
	assertSameBehaviour(t, orig, x)
}

func TestFissionRefusesBackwardDependence(t *testing.T) {
	// b(i) reads a(i+1): after distribution the read would see updated
	// values. The index signature a(i+1) is not zero-offset, so fission
	// must keep the statements together.
	src := `
function b = f(a)
  n = length(a)
  b = zeros(1, n)
  for i = 1:n-1
    b(1, i) = a(1, i + 1)
    a(1, i) = 0
  end
endfunction`
	orig := compile(t, src, "f", ir.MatrixArg(1, 12))
	x := cloneProg(orig)
	FissionAll(x)
	assertSameBehaviour(t, orig, x)
}

func TestUnrollExactAndRemainder(t *testing.T) {
	src := `
function r = f(v)
  r = 0
  for i = 1:10
    r = r + v(1, i) * i
  end
endfunction`
	for _, k := range []int{2, 3, 4, 5, 7, 10, 16} {
		orig := compile(t, src, "f", ir.MatrixArg(1, 10))
		x := cloneProg(orig)
		n := UnrollInnermost(x, k)
		if n == 0 {
			t.Fatalf("k=%d: nothing unrolled", k)
		}
		assertSameBehaviour(t, orig, x)
	}
}

func TestUnrollKeepsTripCountsConsistent(t *testing.T) {
	src := `
function r = f(v)
  r = 0
  for i = 1:10
    r = r + v(1, i)
  end
endfunction`
	x := compile(t, src, "f", ir.MatrixArg(1, 10))
	UnrollInnermost(x, 4)
	total := 0
	ir.WalkStmts(x.Entry.Body, func(s ir.Stmt) bool {
		if f, ok := s.(*ir.For); ok {
			// Each main-loop iteration covers 4 original ones.
			total += f.Trip
		}
		return true
	})
	if total != 2+2 { // main loop 2 trips + remainder 2 trips
		t.Fatalf("total trips after unroll = %d", total)
	}
}

func TestIndexSetSplit(t *testing.T) {
	src := `
function r = f(v)
  r = 0
  for i = 1:12
    r = r + v(1, i) * i
  end
endfunction`
	for _, m := range []int{1, 5, 6, 11} {
		orig := compile(t, src, "f", ir.MatrixArg(1, 12))
		x := cloneProg(orig)
		var replaced bool
		var out []ir.Stmt
		for _, s := range x.Entry.Body {
			if loop, ok := s.(*ir.For); ok && !replaced {
				if parts, did := IndexSetSplit(loop, m); did {
					replaced = true
					for _, p := range parts {
						out = append(out, p)
					}
					continue
				}
			}
			out = append(out, s)
		}
		if !replaced {
			t.Fatalf("m=%d: split failed", m)
		}
		x.Entry.Body = out
		assertSameBehaviour(t, orig, x)
	}
}

func TestFuseElementwiseLoops(t *testing.T) {
	src := `
function [a, b] = f(v)
  n = length(v)
  a = zeros(1, n)
  b = zeros(1, n)
  for i = 1:n
    a(1, i) = v(1, i) * 2
  end
  for i = 1:n
    b(1, i) = v(1, i) + 1
  end
endfunction`
	orig := compile(t, src, "f", ir.MatrixArg(1, 16))
	x := cloneProg(orig)
	fused := FuseAll(x)
	if fused == 0 {
		t.Fatal("expected at least one fusion")
	}
	assertSameBehaviour(t, orig, x)
}

func TestFuseRefusesProducerConsumerWithOffset(t *testing.T) {
	// Second loop reads a(i+1) written by the first: fusing would read
	// stale values; signatures differ so fusion must refuse.
	src := `
function b = f(v)
  n = length(v)
  a = zeros(1, n)
  b = zeros(1, n)
  for i = 1:n
    a(1, i) = v(1, i) * 2
  end
  for i = 1:n-1
    b(1, i) = a(1, i + 1)
  end
endfunction`
	orig := compile(t, src, "f", ir.MatrixArg(1, 10))
	x := cloneProg(orig)
	FuseAll(x)
	assertSameBehaviour(t, orig, x)
}

func TestTilePreservesSemantics(t *testing.T) {
	src := `
function out = f(img)
  h = size(img, 1)
  w = size(img, 2)
  out = zeros(h, w)
  for i = 1:h
    for j = 1:w
      out(i, j) = img(i, j) * 2 + i - j
    end
  end
endfunction`
	for _, tile := range [][2]int{{2, 2}, {3, 4}, {5, 7}, {16, 16}} {
		orig := compile(t, src, "f", ir.MatrixArg(9, 11))
		x := cloneProg(orig)
		n := TileTopLevel(x, tile[0], tile[1])
		if n == 0 {
			t.Fatalf("tile %v: nothing tiled", tile)
		}
		assertSameBehaviour(t, orig, x)
	}
}

func TestTileRefusesReduction(t *testing.T) {
	src := `
function r = f(img)
  r = 0
  for i = 1:8
    for j = 1:8
      r = r + img(i, j)
    end
  end
endfunction`
	orig := compile(t, src, "f", ir.MatrixArg(8, 8))
	x := cloneProg(orig)
	n := TileTopLevel(x, 4, 4)
	if n != 0 {
		t.Fatal("tiling a reduction must be refused")
	}
	assertSameBehaviour(t, orig, x)
}

func TestFoldConstants(t *testing.T) {
	src := `
function r = f(x)
  a = 2 + 3
  if 1 > 0 then
    r = x * a + 0
  else
    r = 999
  end
endfunction`
	orig := compile(t, src, "f", ir.ScalarArg())
	x := cloneProg(orig)
	n := FoldConstants(x)
	if n == 0 {
		t.Fatal("expected folds")
	}
	// The constant if must be flattened away.
	hasIf := false
	ir.WalkStmts(x.Entry.Body, func(s ir.Stmt) bool {
		if _, ok := s.(*ir.If); ok {
			hasIf = true
		}
		return true
	})
	if hasIf {
		t.Fatal("constant if should be flattened")
	}
	assertSameBehaviour(t, orig, x)
}

func TestPromoteScratchpadSelectsHotVars(t *testing.T) {
	src := `
function r = f(big, small)
  r = 0
  for rep = 1:20
    for i = 1:4
      r = r + small(1, i)
    end
  end
  for i = 1:8
    r = r + big(1, i)
  end
endfunction`
	prog := compile(t, src, "f", ir.MatrixArg(1, 8), ir.MatrixArg(1, 4))
	dec := PromoteScratchpad(prog, SPMOptions{
		CapacityBytes:  4 * 8, // room for exactly the small hot vector
		SharedLatency:  20,
		SPMLatency:     2,
		DMACostPerByte: 0.5,
	})
	if len(dec.Promoted) != 1 {
		t.Fatalf("promoted %d vars, want 1", len(dec.Promoted))
	}
	v := dec.Promoted[0]
	if v.Elems() != 4 {
		t.Fatalf("promoted %s, want the hot 4-element vector", v)
	}
	if v.Storage != ir.StorageSPM {
		t.Fatalf("storage = %v", v.Storage)
	}
	if dec.GainCycles <= 0 || dec.BytesUsed != 32 {
		t.Fatalf("decision: %+v", dec)
	}
}

func TestPromoteScratchpadRespectsCapacity(t *testing.T) {
	src := `
function r = f(a, b)
  r = sum(a) + sum(b)
endfunction`
	prog := compile(t, src, "f", ir.MatrixArg(4, 4), ir.MatrixArg(4, 4))
	dec := PromoteScratchpad(prog, SPMOptions{
		CapacityBytes:  16*8 + 8, // one matrix fits, not both
		SharedLatency:  20,
		SPMLatency:     2,
		DMACostPerByte: 0.1,
	})
	if dec.BytesUsed > 16*8+8 {
		t.Fatalf("capacity exceeded: %d", dec.BytesUsed)
	}
	if len(dec.Promoted) != 1 {
		t.Fatalf("promoted %d vars, want 1", len(dec.Promoted))
	}
}

func TestPromoteScratchpadKnapsackOptimal(t *testing.T) {
	// Three vars: sizes 6,5,5 elems; the two 5s together beat the 6 when
	// capacity is 10 words, even though the 6 has the single largest gain.
	src := `
function r = f(a, b, c)
  r = 0
  for rep = 1:10
    r = r + sum(a)
  end
  for rep = 1:7
    r = r + sum(b) + sum(c)
  end
endfunction`
	prog := compile(t, src, "f", ir.MatrixArg(1, 6), ir.MatrixArg(1, 5), ir.MatrixArg(1, 5))
	dec := PromoteScratchpad(prog, SPMOptions{
		CapacityBytes:  10 * 8,
		SharedLatency:  10,
		SPMLatency:     1,
		DMACostPerByte: 0,
	})
	if len(dec.Promoted) != 2 {
		t.Fatalf("promoted %d vars, want the two 5-element vectors: %v", len(dec.Promoted), dec.Promoted)
	}
	for _, v := range dec.Promoted {
		if v.Elems() != 5 {
			t.Fatalf("promoted %s", v)
		}
	}
}

func TestApplyPipelineEndToEnd(t *testing.T) {
	orig := compile(t, fissionSrc, "f", ir.MatrixArg(10, 10))
	x := cloneProg(orig)
	rep := Apply(x, Options{
		Fold: true, Fission: true, UnrollFactor: 2,
		SPM: &SPMOptions{CapacityBytes: 1 << 12, SharedLatency: 20, SPMLatency: 2, DMACostPerByte: 0.25},
	})
	if rep.FissionSplits == 0 || rep.Unrolled == 0 {
		t.Fatalf("report: %s", rep)
	}
	assertSameBehaviour(t, orig, x)
	if !strings.Contains(rep.String(), "fission=") {
		t.Fatalf("report string: %s", rep)
	}
}

func TestLabelLoops(t *testing.T) {
	prog := compile(t, fissionSrc, "f", ir.MatrixArg(4, 4))
	LabelLoops(prog)
	labels := map[string]bool{}
	ir.WalkStmts(prog.Entry.Body, func(s ir.Stmt) bool {
		if f, ok := s.(*ir.For); ok {
			if f.Label == "" {
				t.Fatal("unlabeled loop")
			}
			if labels[f.Label] {
				t.Fatalf("duplicate label %s", f.Label)
			}
			labels[f.Label] = true
		}
		return true
	})
	if len(labels) < 4 {
		t.Fatalf("labels: %d", len(labels))
	}
}

// Property-style sweep: every pipeline configuration preserves semantics
// on a stencil-ish kernel with control flow.
func TestPipelineConfigSweepPreservesSemantics(t *testing.T) {
	src := `
function [out, stat] = f(img)
  h = size(img, 1)
  w = size(img, 2)
  out = zeros(h, w)
  stat = 0
  for i = 1:h
    for j = 1:w
      v = img(i, j)
      if v > 0 then
        out(i, j) = sqrt(v) + i
      else
        out(i, j) = -v * 2
      end
    end
  end
  for i = 1:h
    for j = 1:w
      stat = stat + out(i, j)
    end
  end
endfunction`
	configs := []Options{
		{Fold: true},
		{Fission: true},
		{Fold: true, Fission: true},
		{UnrollFactor: 3},
		{TileI: 3, TileJ: 3},
		{Fold: true, Fission: true, UnrollFactor: 2, TileI: 2, TileJ: 4},
		{Fusion: true},
		{Fold: true, Fission: true, Fusion: true},
	}
	for ci, cfg := range configs {
		orig := compile(t, src, "f", ir.MatrixArg(7, 9))
		x := cloneProg(orig)
		Apply(x, cfg)
		t.Run(strings.ReplaceAll(strings.TrimSpace(rcfg(cfg)), " ", "_"), func(t *testing.T) {
			assertSameBehaviour(t, orig, x, int64(ci+1), int64(ci+100))
		})
	}
}

func rcfg(o Options) string {
	s := ""
	if o.Fold {
		s += " fold"
	}
	if o.Fission {
		s += " fission"
	}
	if o.Fusion {
		s += " fusion"
	}
	if o.UnrollFactor > 1 {
		s += " unroll"
	}
	if o.TileI > 0 {
		s += " tile"
	}
	if s == "" {
		s = "none"
	}
	return s
}
