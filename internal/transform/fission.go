package transform

import (
	"argo/internal/ir"
)

// FissionNest distributes a perfect loop nest over the statements of its
// innermost body ("loop distribution", the fine-grain task decomposition
// transformation of §III-C). It returns the replacement loops (each a full
// copy of the nest around one legal statement group) and true, or nil and
// false when no legal split exists.
//
// Scalar values flowing across a split boundary are handled by redundant
// computation: the defining scalar assignments are replicated into the
// consuming group (cf. Pugh & Rosser, iteration-space slicing — the paper
// notes such redundancy is acceptable, even desirable, for predictability).
func FissionNest(loop *ir.For) ([]*ir.For, bool) {
	nest := perfectNest(loop)
	units := nest.body
	if len(units) < 2 {
		return nil, false
	}
	if hasLooseJumps(units) {
		return nil, false
	}
	ivars := nest.ivarSet()
	// Compute cut points: boundary p is legal if prefix and suffix may be
	// separated. Scalars defined in the prefix and read in the suffix must
	// be replicable pure scalar assignments.
	var groups [][]ir.Stmt
	cur := []ir.Stmt{units[0]}
	for p := 1; p < len(units); p++ {
		prefix := units[:p]
		suffix := units[p:]
		// Only cut where both sides do productive (memory-writing) work;
		// otherwise fission just manufactures scalar-recomputation sweeps.
		if !productive(cur) || !productive(suffix) {
			cur = append(cur, units[p])
			continue
		}
		if boundaryLegal(units, prefix, suffix, ivars) {
			group := append(replicatedDefs(prefix, suffix, ivars), cur...)
			groups = append(groups, group)
			cur = nil
		}
		cur = append(cur, units[p])
	}
	if len(groups) == 0 {
		return nil, false
	}
	lastPrefixLen := len(units) - len(cur)
	groups = append(groups, append(replicatedDefs(units[:lastPrefixLen], units[lastPrefixLen:], ivars), cur...))
	// Rebuild one nest per group.
	out := make([]*ir.For, len(groups))
	for i, g := range groups {
		out[i] = rebuildNest(nest.loops, g)
	}
	return out, true
}

// productive reports whether a region performs any matrix writes.
func productive(stmts []ir.Stmt) bool {
	return len(ir.ComputeUses(stmts).MatWrites) > 0
}

// boundaryLegal checks whether the nest may be distributed between prefix
// and suffix.
func boundaryLegal(whole, prefix, suffix []ir.Stmt, ivars map[*ir.Var]bool) bool {
	uA := ir.ComputeUses(prefix)
	uB := ir.ComputeUses(suffix)
	if !reorderLegal(whole, uA, uB, ivars) {
		return false
	}
	// Replicated defs for cross-boundary scalars must exist and be pure.
	needed := crossScalars(prefix, suffix, ivars)
	defs := scalarDefs(prefix)
	for v := range needed {
		idx, ok := defs[v]
		if !ok {
			return false
		}
		// The defining assignment must be a top-level AssignScalar whose
		// own scalar inputs are in turn replicable (checked transitively
		// below via closure over defs) and whose matrix reads are
		// iteration-private or read-only in the nest.
		as := prefix[idx].(*ir.AssignScalar)
		if !replicableExpr(as.Src, whole, uA, uB, ivars, defs, prefix, map[*ir.Var]bool{}) {
			return false
		}
	}
	// The suffix must not write scalars that the prefix reads (the prefix
	// of a later sweep would see the final value instead of the original).
	for v := range uB.ScalWrite {
		if ivars[v] {
			continue
		}
		if uA.ScalReads[v] && !definesBeforeUse(prefix, v) {
			return false
		}
	}
	return true
}

// crossScalars returns scalars read by the suffix that the prefix writes
// (excluding induction variables and scalars the suffix itself defines
// before use).
func crossScalars(prefix, suffix []ir.Stmt, ivars map[*ir.Var]bool) map[*ir.Var]bool {
	uA := ir.ComputeUses(prefix)
	out := map[*ir.Var]bool{}
	for v := range ir.ComputeUses(suffix).ScalReads {
		if ivars[v] || !uA.ScalWrite[v] {
			continue
		}
		if definesBeforeUse(suffix, v) {
			continue
		}
		out[v] = true
	}
	return out
}

// definesBeforeUse reports whether the region unconditionally assigns
// scalar v before any statement that may read it — directly, as a loop
// induction variable, or inside the body of a loop it does not otherwise
// touch (iteration-private temporaries of nested loops).
func definesBeforeUse(stmts []ir.Stmt, v *ir.Var) bool {
	for _, s := range stmts {
		if as, ok := s.(*ir.AssignScalar); ok && as.Dst == v {
			u := ir.NewUseSets()
			u.AddExprUses(as.Src)
			return !u.ScalReads[v]
		}
		if f, ok := s.(*ir.For); ok {
			u := ir.NewUseSets()
			u.AddExprUses(f.Lo)
			u.AddExprUses(f.Step)
			u.AddExprUses(f.Hi)
			if u.ScalReads[v] {
				return false
			}
			if f.IVar == v {
				return true
			}
			whole := ir.ComputeUses(f.Body)
			if !whole.ScalReads[v] && !whole.ScalWrite[v] {
				continue
			}
			return definesBeforeUse(f.Body, v)
		}
		u := ir.ComputeUses([]ir.Stmt{s})
		if u.ScalReads[v] || u.ScalWrite[v] {
			return false
		}
	}
	return false
}

// scalarDefs maps each scalar to the index of its LAST top-level
// AssignScalar definition in stmts, provided that is the only kind of
// write to it.
func scalarDefs(stmts []ir.Stmt) map[*ir.Var]int {
	defs := map[*ir.Var]int{}
	bad := map[*ir.Var]bool{}
	for i, s := range stmts {
		switch st := s.(type) {
		case *ir.AssignScalar:
			defs[st.Dst] = i
		default:
			for v := range ir.ComputeUses([]ir.Stmt{st}).ScalWrite {
				bad[v] = true
			}
		}
	}
	for v := range bad {
		delete(defs, v)
	}
	return defs
}

// replicableExpr reports whether an expression may be re-evaluated in a
// later sweep of the nest with the same result: its matrix reads must be
// read-only in the whole nest or iteration-private, and its scalar reads
// must be induction variables or themselves replicable definitions.
func replicableExpr(e ir.Expr, whole []ir.Stmt, uA, uB *ir.UseSets, ivars map[*ir.Var]bool, defs map[*ir.Var]int, prefix []ir.Stmt, visiting map[*ir.Var]bool) bool {
	ok := true
	ir.WalkExprs(e, func(sub ir.Expr) {
		if !ok {
			return
		}
		switch x := sub.(type) {
		case *ir.Index:
			if uA.MatWrites[x.V] || uB.MatWrites[x.V] {
				if !fullRankPrivate(whole, x.V, ivars) {
					ok = false
				}
			}
		case *ir.VarRef:
			v := x.V
			if ivars[v] || visiting[v] {
				if visiting[v] {
					ok = false
				}
				return
			}
			if uA.ScalWrite[v] {
				idx, has := defs[v]
				if !has {
					ok = false
					return
				}
				visiting[v] = true
				if !replicableExpr(prefix[idx].(*ir.AssignScalar).Src, whole, uA, uB, ivars, defs, prefix, visiting) {
					ok = false
				}
				delete(visiting, v)
			}
		}
	})
	return ok
}

// replicatedDefs returns clones of the prefix's scalar assignments that
// the suffix needs, in original order.
func replicatedDefs(prefix, suffix []ir.Stmt, ivars map[*ir.Var]bool) []ir.Stmt {
	if len(prefix) == 0 {
		return nil
	}
	needed := crossScalars(prefix, suffix, ivars)
	if len(needed) == 0 {
		return nil
	}
	defs := scalarDefs(prefix)
	// Transitive closure of needed scalars through their definitions.
	include := map[int]bool{}
	var pull func(v *ir.Var)
	pull = func(v *ir.Var) {
		idx, ok := defs[v]
		if !ok || include[idx] {
			return
		}
		include[idx] = true
		u := ir.NewUseSets()
		u.AddExprUses(prefix[idx].(*ir.AssignScalar).Src)
		for dep := range u.ScalReads {
			pull(dep)
		}
	}
	for v := range needed {
		pull(v)
	}
	var out []ir.Stmt
	for i, s := range prefix {
		if include[i] {
			out = append(out, ir.CloneStmt(s))
		}
	}
	return out
}

// rebuildNest clones the loop headers of nest around a new innermost body.
func rebuildNest(loops []*ir.For, body []ir.Stmt) *ir.For {
	cur := ir.CloneStmts(body)
	var top *ir.For
	for i := len(loops) - 1; i >= 0; i-- {
		l := loops[i]
		top = &ir.For{
			IVar:  l.IVar,
			Lo:    ir.CloneExpr(l.Lo),
			Step:  ir.CloneExpr(l.Step),
			Hi:    ir.CloneExpr(l.Hi),
			Trip:  l.Trip,
			Body:  cur,
			Label: l.Label,
		}
		cur = []ir.Stmt{top}
	}
	return top
}

// FissionAll applies FissionNest to every top-level loop of the entry
// function, replacing splittable loops with their distributed forms.
// It returns the number of additional top-level loops created.
func FissionAll(prog *ir.Program) int {
	var out []ir.Stmt
	created := 0
	for _, s := range prog.Entry.Body {
		loop, ok := s.(*ir.For)
		if !ok {
			out = append(out, s)
			continue
		}
		parts, did := FissionNest(loop)
		if !did {
			out = append(out, s)
			continue
		}
		created += len(parts) - 1
		for _, p := range parts {
			out = append(out, p)
		}
	}
	prog.Entry.Body = out
	return created
}
