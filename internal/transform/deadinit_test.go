package transform

import (
	"testing"

	"argo/internal/adl"
	"argo/internal/ir"
	"argo/internal/wcet"
)

func TestElideDeadInitsRemovesOverwrittenFill(t *testing.T) {
	src := `
function out = f(img)
  h = size(img, 1)
  w = size(img, 2)
  out = zeros(h, w)
  for i = 1:h
    for j = 1:w
      out(i, j) = img(i, j) * 2
    end
  end
endfunction`
	orig := compile(t, src, "f", ir.MatrixArg(6, 6))
	x := cloneProg(orig)
	n := ElideDeadInits(x)
	if n != 1 {
		t.Fatalf("elided %d fills, want 1", n)
	}
	assertSameBehaviour(t, orig, x)
	m := wcet.ModelFor(adl.XentiumPlatform(1), 0)
	if after, before := wcet.Structural(x.Entry.Body, m), wcet.Structural(orig.Entry.Body, m); after >= before {
		t.Fatalf("elision did not reduce the bound: %d -> %d", before, after)
	}
}

func TestElideKeepsPartialCoverInit(t *testing.T) {
	// The writer skips the borders: the zero borders are visible in the
	// result, so the init must stay.
	src := `
function out = f(img)
  h = size(img, 1)
  w = size(img, 2)
  out = zeros(h, w)
  for i = 2:h-1
    for j = 2:w-1
      out(i, j) = img(i, j) * 2
    end
  end
endfunction`
	orig := compile(t, src, "f", ir.MatrixArg(6, 6))
	x := cloneProg(orig)
	if n := ElideDeadInits(x); n != 0 {
		t.Fatalf("elided %d fills of a partially covered matrix", n)
	}
	assertSameBehaviour(t, orig, x)
}

func TestElideKeepsInitReadBeforeRewrite(t *testing.T) {
	// The accumulation reads tmp before the final full rewrite.
	src := `
function out = f(img)
  h = size(img, 1)
  w = size(img, 2)
  tmp = zeros(h, w)
  out = zeros(h, w)
  for i = 1:h
    for j = 1:w
      out(i, j) = tmp(i, j) + img(i, j)
    end
  end
  for i = 1:h
    for j = 1:w
      tmp(i, j) = 1
    end
  end
endfunction`
	orig := compile(t, src, "f", ir.MatrixArg(4, 4))
	x := cloneProg(orig)
	ElideDeadInits(x)
	assertSameBehaviour(t, orig, x)
}

func TestElideKeepsConditionalWriter(t *testing.T) {
	// Writers under an if leave some init values live.
	src := `
function out = f(img)
  h = size(img, 1)
  w = size(img, 2)
  out = zeros(h, w)
  for i = 1:h
    for j = 1:w
      if img(i, j) > 0 then
        out(i, j) = img(i, j)
      end
    end
  end
endfunction`
	orig := compile(t, src, "f", ir.MatrixArg(5, 5))
	x := cloneProg(orig)
	if n := ElideDeadInits(x); n != 0 {
		t.Fatalf("elided %d fills with a conditional writer", n)
	}
	assertSameBehaviour(t, orig, x)
}

func TestElideOnUseCasesPreservesBehaviourAndHelps(t *testing.T) {
	src := `
function [a, b] = f(img)
  h = size(img, 1)
  w = size(img, 2)
  a = zeros(h, w)
  b = zeros(h, w)
  for i = 1:h
    for j = 1:w
      a(i, j) = img(i, j) + 1
    end
  end
  for i = 1:h
    for j = 1:w
      b(i, j) = a(i, j) * 2
    end
  end
endfunction`
	orig := compile(t, src, "f", ir.MatrixArg(8, 8))
	x := cloneProg(orig)
	if n := ElideDeadInits(x); n != 2 {
		t.Fatalf("elided %d, want both inits", n)
	}
	assertSameBehaviour(t, orig, x)
}
