package transform

import (
	"math/rand"
	"testing"

	"argo/internal/adl"
	"argo/internal/ir"
	"argo/internal/scil"
	"argo/internal/wcet"
)

func TestHoistInvariantsReducesWCET(t *testing.T) {
	src := `
function r = f(a, b, v)
  r = 0
  for i = 1:50
    k = sqrt(abs(a)) + b * 3
    r = r + v(1, i) * k
  end
endfunction`
	orig := compile(t, src, "f", ir.ScalarArg(), ir.ScalarArg(), ir.MatrixArg(1, 50))
	x := cloneProg(orig)
	n := HoistInvariants(x)
	if n == 0 {
		t.Fatal("nothing hoisted")
	}
	assertSameBehaviour(t, orig, x)
	m := wcet.ModelFor(adl.XentiumPlatform(1), 0)
	before := wcet.Structural(orig.Entry.Body, m)
	after := wcet.Structural(x.Entry.Body, m)
	if after >= before {
		t.Fatalf("hoisting did not reduce the bound: %d -> %d", before, after)
	}
}

func TestHoistRefusesLoopDependent(t *testing.T) {
	src := `
function r = f(v)
  r = 0
  for i = 1:10
    k = i * 2
    acc = r + 1
    r = acc + v(1, i) + k
  end
endfunction`
	orig := compile(t, src, "f", ir.MatrixArg(1, 10))
	x := cloneProg(orig)
	HoistInvariants(x)
	// k depends on i, acc on r: neither may move.
	assertSameBehaviour(t, orig, x)
	for _, s := range x.Entry.Body {
		if as, ok := s.(*ir.AssignScalar); ok {
			if as.Dst.Name == "k" || as.Dst.Name == "acc" {
				t.Fatalf("loop-dependent assignment %s hoisted", as.Dst.Name)
			}
		}
	}
}

func TestHoistRefusesWhenMatrixWritten(t *testing.T) {
	// k reads m which the loop writes: not invariant.
	src := `
function r = f(m)
  r = 0
  for i = 1:4
    k = m(1, 1) * 2
    m(1, 1) = m(1, 1) + 1
    r = r + k
  end
endfunction`
	orig := compile(t, src, "f", ir.MatrixArg(2, 2))
	x := cloneProg(orig)
	HoistInvariants(x)
	assertSameBehaviour(t, orig, x)
}

func TestHoistNestedLoops(t *testing.T) {
	src := `
function r = f(a, img)
  r = 0
  for i = 1:6
    for j = 1:6
      w = sqrt(abs(a)) * 0.5
      r = r + img(i, j) * w
    end
  end
endfunction`
	orig := compile(t, src, "f", ir.ScalarArg(), ir.MatrixArg(6, 6))
	x := cloneProg(orig)
	n := HoistInvariants(x)
	if n == 0 {
		t.Fatal("nested invariant not hoisted")
	}
	assertSameBehaviour(t, orig, x)
}

func TestInterchangePreservesSemantics(t *testing.T) {
	src := `
function out = f(img)
  h = size(img, 1)
  w = size(img, 2)
  out = zeros(h, w)
  for i = 1:h
    for j = 1:w
      out(i, j) = img(i, j) * 2 + i * 10 + j
    end
  end
endfunction`
	orig := compile(t, src, "f", ir.MatrixArg(5, 7))
	x := cloneProg(orig)
	swapped := false
	var out []ir.Stmt
	for _, s := range x.Entry.Body {
		if loop, ok := s.(*ir.For); ok && !swapped {
			if nl, did := Interchange(loop); did {
				swapped = true
				out = append(out, nl)
				continue
			}
		}
		out = append(out, s)
	}
	if !swapped {
		t.Fatal("interchange failed on an elementwise nest")
	}
	x.Entry.Body = out
	assertSameBehaviour(t, orig, x)
}

func TestInterchangeRefusesDependence(t *testing.T) {
	// out(i, j) reads out(i-1, j): interchanging would break the order.
	src := `
function out = f(img)
  out = zeros(6, 6)
  for i = 2:6
    for j = 1:6
      out(i, j) = out(i - 1, j) + img(i, j)
    end
  end
endfunction`
	prog := compile(t, src, "f", ir.MatrixArg(6, 6))
	checked := false
	for _, s := range prog.Entry.Body {
		loop, ok := s.(*ir.For)
		if !ok {
			continue
		}
		uses := ir.ComputeUses(loop.Body)
		// Find the compute nest: it both reads and writes `out`.
		dependent := false
		for v := range uses.MatWrites {
			if uses.MatReads[v] {
				dependent = true
			}
		}
		if !dependent {
			continue
		}
		checked = true
		if _, did := Interchange(loop); did {
			t.Fatal("interchange of a loop-carried dependent nest must be refused")
		}
	}
	if !checked {
		t.Fatal("dependent nest not found")
	}
}

func TestInterchangeRefusesTriangular(t *testing.T) {
	// Inner bound depends on the outer ivar: cannot interchange.
	src := `
function r = f(img)
  r = 0
  for i = 1:6
    for j = 1:i
      r = r + img(i, j)
    end
  end
endfunction`
	p, err := scil.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	// Triangular loops have non-constant inner bounds and are rejected at
	// lowering already; construct the IR shape manually instead.
	prog := compile(t, `
function out = f(img)
  out = zeros(6, 6)
  for i = 1:6
    for j = 1:6
      out(i, j) = img(i, j)
    end
  end
endfunction`, "f", ir.MatrixArg(6, 6))
	for _, s := range prog.Entry.Body {
		loop, ok := s.(*ir.For)
		if !ok {
			continue
		}
		nest := perfectNest(loop)
		if len(nest.loops) < 2 {
			continue
		}
		// Make the inner bound depend on the outer ivar.
		nest.loops[1].Hi = &ir.VarRef{V: nest.loops[0].IVar}
		if _, did := Interchange(loop); did {
			t.Fatal("triangular nest interchanged")
		}
	}
}

func TestHoistOnRandomPrograms(t *testing.T) {
	cfg := scil.DefaultGenConfig()
	for seed := 0; seed < 30; seed++ {
		rng := rand.New(rand.NewSource(int64(3000 + seed)))
		p := scil.Generate(rng, cfg)
		orig, err := ir.Lower(p, "fuzz", []ir.ArgSpec{ir.MatrixArg(cfg.Rows, cfg.Cols)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		x := cloneProg(orig)
		HoistInvariants(x)
		assertSameBehaviour(t, orig, x, int64(seed), int64(seed+77))
	}
}
