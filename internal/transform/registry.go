package transform

import (
	"encoding/binary"
	"math"

	"argo/internal/ir"
)

// The transformation pipeline is a registry of named passes in a fixed
// default order (the order the old boolean-driven Apply hardwired).
// Each entry declares when it is enabled, which option values it reads
// (canonically encoded, for content-addressed pass caching), and how it
// rewrites the program. The driver (internal/core) lifts every enabled
// entry into a pass-manager pass, so transforms can be individually
// observed, disabled, and cached; Apply below remains the plain
// one-call form for tests and direct users.

// PassSpec is one registered predictability transformation.
type PassSpec struct {
	// Name is the registry name (stable: used by argocc -disable-pass,
	// cache keys, and metrics).
	Name string
	// Enabled reports whether the options select this pass.
	Enabled func(Options) bool
	// Params canonically encodes every option value Run reads, so equal
	// (program, Params) implies an identical transformation result.
	Params func(Options) []byte
	// Run applies the transformation to prog in place and records what
	// it did in rep (each pass writes only its own Report fields).
	Run func(prog *ir.Program, opt Options, rep *Report)
}

func noParams(Options) []byte { return nil }

// Registry lists every transformation in default application order.
// The order is load-bearing: it matches the fixed order the pipeline
// has always used (fold, hoist, fission, elide-inits, fusion, unroll,
// tile, chunk, spm), so registry-driven runs are bit-identical to the
// historical hardwired sequence.
var Registry = []PassSpec{
	{
		Name:    "fold",
		Enabled: func(o Options) bool { return o.Fold },
		Params:  noParams,
		Run:     func(p *ir.Program, _ Options, r *Report) { r.Folded = FoldConstants(p) },
	},
	{
		Name:    "hoist",
		Enabled: func(o Options) bool { return o.Hoist },
		Params:  noParams,
		Run:     func(p *ir.Program, _ Options, r *Report) { r.Hoisted = HoistInvariants(p) },
	},
	{
		Name:    "fission",
		Enabled: func(o Options) bool { return o.Fission },
		Params:  noParams,
		Run:     func(p *ir.Program, _ Options, r *Report) { r.FissionSplits = FissionAll(p) },
	},
	{
		Name:    "elide-inits",
		Enabled: func(o Options) bool { return o.ElideInits },
		Params:  noParams,
		Run:     func(p *ir.Program, _ Options, r *Report) { r.ElidedInits = ElideDeadInits(p) },
	},
	{
		Name:    "fusion",
		Enabled: func(o Options) bool { return o.Fusion },
		Params:  noParams,
		Run:     func(p *ir.Program, _ Options, r *Report) { r.Fusions = FuseAll(p) },
	},
	{
		Name:    "unroll",
		Enabled: func(o Options) bool { return o.UnrollFactor > 1 },
		Params:  func(o Options) []byte { return u64s(uint64(o.UnrollFactor)) },
		Run:     func(p *ir.Program, o Options, r *Report) { r.Unrolled = UnrollInnermost(p, o.UnrollFactor) },
	},
	{
		Name:    "tile",
		Enabled: func(o Options) bool { return o.TileI > 0 && o.TileJ > 0 },
		Params:  func(o Options) []byte { return u64s(uint64(o.TileI), uint64(o.TileJ)) },
		Run:     func(p *ir.Program, o Options, r *Report) { r.Tiled = TileTopLevel(p, o.TileI, o.TileJ) },
	},
	{
		Name:    "chunk",
		Enabled: func(o Options) bool { return o.ParallelChunks > 1 },
		Params:  func(o Options) []byte { return u64s(uint64(o.ParallelChunks)) },
		Run:     func(p *ir.Program, o Options, r *Report) { r.Chunked = ParallelizeLoops(p, o.ParallelChunks) },
	},
	{
		Name:    "spm",
		Enabled: func(o Options) bool { return o.SPM != nil },
		Params: func(o Options) []byte {
			s := o.SPM
			return u64s(uint64(s.CapacityBytes), uint64(s.SharedLatency),
				uint64(s.SPMLatency), math.Float64bits(s.DMACostPerByte))
		},
		Run: func(p *ir.Program, o Options, r *Report) { r.SPM = PromoteScratchpad(p, *o.SPM) },
	},
}

// u64s little-endian-encodes values for Params.
func u64s(vals ...uint64) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, v)
	}
	return out
}

// Plan returns the registry passes the options enable, in application
// order.
func Plan(opt Options) []PassSpec {
	var out []PassSpec
	for _, p := range Registry {
		if p.Enabled(opt) {
			out = append(out, p)
		}
	}
	return out
}

// PassNames lists every registered transformation name in order.
func PassNames() []string {
	out := make([]string, len(Registry))
	for i, p := range Registry {
		out[i] = p.Name
	}
	return out
}

// Merge folds another report's contributions into r (each registry pass
// writes disjoint fields, so merging per-pass deltas reconstructs the
// one-call Apply report exactly).
func (r *Report) Merge(d Report) {
	r.Folded += d.Folded
	r.Hoisted += d.Hoisted
	r.ElidedInits += d.ElidedInits
	r.FissionSplits += d.FissionSplits
	r.Fusions += d.Fusions
	r.Unrolled += d.Unrolled
	r.Tiled += d.Tiled
	r.Chunked += d.Chunked
	if d.SPM.Candidates != 0 || d.SPM.BytesUsed != 0 || d.SPM.GainCycles != 0 || len(d.SPM.Promoted) != 0 {
		r.SPM = d.SPM
	}
}
