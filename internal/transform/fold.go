package transform

import (
	"argo/internal/ir"

	"argo/internal/scil"
)

// FoldConstants simplifies the entry function in place: constant
// subexpressions are folded, if-statements with constant conditions are
// flattened, and zero-trip loops are removed. Returns the number of nodes
// simplified.
func FoldConstants(prog *ir.Program) int {
	n := 0
	prog.Entry.Body = foldBlock(prog.Entry.Body, &n)
	return n
}

func foldBlock(stmts []ir.Stmt, n *int) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.AssignScalar:
			st.Src = foldExpr(st.Src, n)
			out = append(out, st)
		case *ir.Store:
			for i := range st.Idx {
				st.Idx[i] = foldExpr(st.Idx[i], n)
			}
			st.Src = foldExpr(st.Src, n)
			out = append(out, st)
		case *ir.For:
			st.Lo = foldExpr(st.Lo, n)
			st.Step = foldExpr(st.Step, n)
			st.Hi = foldExpr(st.Hi, n)
			if st.Trip == 0 {
				*n++
				continue // drop zero-trip loop
			}
			st.Body = foldBlock(st.Body, n)
			out = append(out, st)
		case *ir.While:
			st.Cond = foldExpr(st.Cond, n)
			st.Body = foldBlock(st.Body, n)
			out = append(out, st)
		case *ir.If:
			st.Cond = foldExpr(st.Cond, n)
			if c, ok := constOf(st.Cond); ok {
				*n++
				if c != 0 {
					out = append(out, foldBlock(st.Then, n)...)
				} else {
					out = append(out, foldBlock(st.Else, n)...)
				}
				continue
			}
			st.Then = foldBlock(st.Then, n)
			st.Else = foldBlock(st.Else, n)
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out
}

func foldExpr(e ir.Expr, n *int) ir.Expr {
	switch x := e.(type) {
	case *ir.Bin:
		x.X = foldExpr(x.X, n)
		x.Y = foldExpr(x.Y, n)
		a, okA := constOf(x.X)
		b, okB := constOf(x.Y)
		if okA && okB {
			*n++
			return &ir.Const{Val: ir.FoldBin(x.Op, a, b)}
		}
		// Algebraic identities that keep WCET honest (fewer ops is always
		// at least as fast on the deterministic core model).
		switch {
		case x.Op == ir.OpAdd && okB && b == 0:
			*n++
			return x.X
		case x.Op == ir.OpAdd && okA && a == 0:
			*n++
			return x.Y
		case x.Op == ir.OpMul && okB && b == 1:
			*n++
			return x.X
		case x.Op == ir.OpMul && okA && a == 1:
			*n++
			return x.Y
		case x.Op == ir.OpSub && okB && b == 0:
			*n++
			return x.X
		}
		return x
	case *ir.Un:
		x.X = foldExpr(x.X, n)
		if a, ok := constOf(x.X); ok {
			*n++
			if x.Op == ir.OpNeg {
				return &ir.Const{Val: -a}
			}
			if a == 0 {
				return &ir.Const{Val: 1}
			}
			return &ir.Const{Val: 0}
		}
		return x
	case *ir.Index:
		for i := range x.Idx {
			x.Idx[i] = foldExpr(x.Idx[i], n)
		}
		return x
	case *ir.Intrinsic:
		allConst := true
		for i := range x.Args {
			x.Args[i] = foldExpr(x.Args[i], n)
			if _, ok := constOf(x.Args[i]); !ok {
				allConst = false
			}
		}
		if allConst {
			if b := scil.LookupBuiltin(x.Name); b != nil && len(x.Args) >= b.MinArgs && len(x.Args) <= b.MaxArgs {
				vals := make([]scil.Value, len(x.Args))
				for i, a := range x.Args {
					c, _ := constOf(a)
					vals[i] = scil.Scalar(c)
				}
				if v, err := b.Eval(vals); err == nil {
					*n++
					return &ir.Const{Val: v.ScalarVal()}
				}
			}
		}
		return x
	default:
		return e
	}
}
