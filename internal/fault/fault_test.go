package fault

import (
	"math"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"zero", Spec{}, true},
		{"full", Spec{Seed: 7, AccessJitter: 1, ExecInflation: 1, NoCStall: 1}, true},
		{"overload", Spec{ExecInflation: 2.5}, true},
		{"neg-jitter", Spec{AccessJitter: -0.1}, false},
		{"jitter-above-1", Spec{AccessJitter: 1.5}, false},
		{"stall-above-1", Spec{NoCStall: 1.01}, false},
		{"neg-inflation", Spec{ExecInflation: -1}, false},
		{"nan", Spec{ExecInflation: math.NaN()}, false},
		{"inf", Spec{AccessJitter: math.Inf(1)}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestZeroSpecDisabled(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Fatal("zero spec must be disabled")
	}
	if New(Spec{Seed: 99}) != nil {
		t.Fatal("New with a seed but no levels must return nil (bit-identical path)")
	}
	if New(Spec{AccessJitter: 0.5}) == nil {
		t.Fatal("New with a level must return an injector")
	}
}

func TestOverloadMode(t *testing.T) {
	if (Spec{ExecInflation: 1}).Overload() {
		t.Fatal("level 1 is not overload")
	}
	if !(Spec{ExecInflation: 1.25}).Overload() {
		t.Fatal("level > 1 is overload")
	}
}

// Injection at identical sites must be identical regardless of call
// order, and distinct seeds must differ somewhere.
func TestSiteDeterminism(t *testing.T) {
	a := New(Spec{Seed: 1, AccessJitter: 1})
	b := New(Spec{Seed: 1, AccessJitter: 1})
	// Query b in reverse order: results must still match a's.
	var got, want []int64
	for i := 0; i < 64; i++ {
		want = append(want, a.AccessDelay(i%5, i, 1000))
	}
	var rev []int64
	for i := 63; i >= 0; i-- {
		rev = append(rev, b.AccessDelay(i%5, i, 1000))
	}
	for i := range want {
		got = append(got, rev[63-i])
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("site %d: order-dependent draw %d vs %d", i, got[i], want[i])
		}
	}
	c := New(Spec{Seed: 2, AccessJitter: 1})
	same := true
	for i := 0; i < 64; i++ {
		if c.AccessDelay(i%5, i, 1000) != want[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical draws at 64 sites")
	}
}

func TestAccessDelayWithinBudget(t *testing.T) {
	in := New(Spec{Seed: 3, AccessJitter: 1})
	for i := 0; i < 1000; i++ {
		if d := in.AccessDelay(1, i, 37); d < 0 || d > 37 {
			t.Fatalf("access %d: delay %d outside [0, 37]", i, d)
		}
	}
	if in.AccessDelay(1, 0, 0) != 0 {
		t.Fatal("zero budget must inject nothing")
	}
	if in.AccessDelay(1, 0, -5) != 0 {
		t.Fatal("negative budget must inject nothing")
	}
	st := in.Stats()
	if st.AccessFaults == 0 || st.AccessExtraCycles == 0 {
		t.Fatal("stats not accumulated")
	}
}

func TestAccessDelayScalesWithLevel(t *testing.T) {
	lo := New(Spec{Seed: 5, AccessJitter: 0.25})
	hi := New(Spec{Seed: 5, AccessJitter: 1})
	var sumLo, sumHi int64
	for i := 0; i < 500; i++ {
		sumLo += lo.AccessDelay(0, i, 1000)
		sumHi += hi.AccessDelay(0, i, 1000)
	}
	if sumLo >= sumHi {
		t.Fatalf("level 0.25 injected %d >= level 1.0's %d", sumLo, sumHi)
	}
}

func TestExecExtraBoundPreservingLevels(t *testing.T) {
	in := New(Spec{Seed: 1, ExecInflation: 1})
	// isolated 600, wcet 1000: full level consumes the whole headroom.
	if got := in.ExecExtra(0, 600, 1000, 1400); got != 400 {
		t.Fatalf("level 1: extra = %d, want 400", got)
	}
	half := New(Spec{Seed: 1, ExecInflation: 0.5})
	if got := half.ExecExtra(0, 600, 1000, 1400); got != 200 {
		t.Fatalf("level 0.5: extra = %d, want 200", got)
	}
	// No headroom: nothing to inject at bound-preserving levels.
	if got := in.ExecExtra(0, 1000, 1000, 1400); got != 0 {
		t.Fatalf("no headroom: extra = %d, want 0", got)
	}
}

func TestExecExtraOverloadExceedsBound(t *testing.T) {
	in := New(Spec{Seed: 1, ExecInflation: 1.25})
	isolated, wcet, bound := int64(600), int64(1000), int64(1400)
	extra := in.ExecExtra(0, isolated, wcet, bound)
	if isolated+extra <= bound {
		t.Fatalf("overload: isolated+extra = %d must exceed task bound %d", isolated+extra, bound)
	}
	_ = wcet
}

func TestLinkStallWithinBudget(t *testing.T) {
	in := New(Spec{Seed: 9, NoCStall: 1})
	for i := 0; i < 1000; i++ {
		if d := in.LinkStall(2, i, 3, 55); d < 0 || d > 55 {
			t.Fatalf("stall %d outside [0, 55]", d)
		}
	}
	if in.LinkStall(2, 0, 3, 0) != 0 {
		t.Fatal("zero budget must stall nothing")
	}
	if in.Stats().LinkStalls == 0 {
		t.Fatal("stats not accumulated")
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{AccessExtraCycles: 3, ExecExtraCycles: 5, LinkStallCycles: 7}
	if s.Total() != 15 {
		t.Fatalf("Total = %d, want 15", s.Total())
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: "task-finish", Task: 3, Observed: 120, Bound: 100}
	if v.String() != "task-finish: task 3 observed 120 > bound 100" {
		t.Fatalf("unexpected render: %s", v)
	}
	g := Violation{Kind: "makespan", Task: -1, Observed: 9, Bound: 8}
	if g.String() != "makespan: observed 9 > bound 8" {
		t.Fatalf("unexpected render: %s", g)
	}
	s := Violation{Kind: "task-start", Task: 1, Observed: 4, Bound: 6}
	if s.String() != "task-start: task 1 started at 4 before release 6" {
		t.Fatalf("unexpected render: %s", s)
	}
}
