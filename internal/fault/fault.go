// Package fault implements deterministic, seed-driven fault injection
// for the ARGO simulator stack: transient NoC link stalls and extra
// arbitration delay (internal/noc), shared-memory access-latency jitter
// up to the modeled worst case (internal/sim), and per-task execution
// time inflation up to — and, in a negative-test mode, beyond — the
// per-task WCET bound.
//
// The point of the framework is adversarial validation of the central
// ARGO claim: the statically analyzed bounds are safe under *any*
// platform interference that stays within the modeled worst case (paper
// §I, §III-C). Every injection site therefore receives an explicit
// cycle budget derived from the static analysis (per-access interference
// headroom, per-task WCET headroom, per-hop WRR waiting allowance), and
// draws a delay within `level × budget`. Experiment E10 sweeps the
// levels and asserts that observed behaviour never exceeds the analytic
// bound — and that deliberate over-bound injection (ExecInflation > 1)
// is detected and reported rather than silently absorbed.
//
// Determinism: every decision is a pure function of (seed, site
// coordinates) through a splitmix64-style hash, so injection is
// reproducible per seed, independent of event-loop iteration order, and
// race-free by construction (the per-run Injector is confined to its
// simulation goroutine; only Stats accumulation is mutable state).
package fault

import (
	"fmt"
	"math"
)

// Spec selects the fault scenario of one simulation run. The zero value
// injects nothing and is guaranteed to leave the simulators bit-identical
// to their uninjected paths.
type Spec struct {
	// Seed drives all pseudo-random draws. Two runs with equal specs are
	// bit-identical; distinct seeds give independent fault patterns.
	Seed int64 `json:"seed"`
	// AccessJitter in [0, 1] scales the extra per-access stall injected
	// on shared-memory accesses: each access may be delayed by up to
	// AccessJitter times its remaining modeled interference budget
	// (analysis allowance minus the arbitration wait actually suffered).
	AccessJitter float64 `json:"access_jitter"`
	// ExecInflation >= 0 inflates task compute time. Levels <= 1 scale
	// into the task's code-level WCET headroom (bound minus actual
	// isolated trace time) and are guaranteed bound-preserving. Levels
	// > 1 are the negative-test mode: tasks are inflated beyond their
	// inflated per-task bound, so the soundness check MUST flag the run.
	ExecInflation float64 `json:"exec_inflation"`
	// NoCStall in [0, 1] scales transient link stalls in the NoC
	// simulator: a link serving a packet may stall for up to NoCStall
	// times the packet's remaining per-hop WRR waiting allowance.
	NoCStall float64 `json:"noc_stall"`
}

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool {
	return s.AccessJitter != 0 || s.ExecInflation != 0 || s.NoCStall != 0
}

// Overload reports whether the spec is in the negative-test mode that
// deliberately exceeds the modeled worst case.
func (s Spec) Overload() bool { return s.ExecInflation > 1 }

// Validate rejects malformed fault scenarios. AccessJitter and NoCStall
// are capped at 1 (their budgets already are the modeled worst case);
// ExecInflation may exceed 1 (the explicit over-bound negative mode).
func (s Spec) Validate() error {
	check := func(name string, v float64, max float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("fault: %s must be finite", name)
		}
		if v < 0 {
			return fmt.Errorf("fault: %s must be >= 0", name)
		}
		if max > 0 && v > max {
			return fmt.Errorf("fault: %s must be <= %g (budgets already model the worst case)", name, max)
		}
		return nil
	}
	if err := check("access_jitter", s.AccessJitter, 1); err != nil {
		return err
	}
	if err := check("exec_inflation", s.ExecInflation, 0); err != nil {
		return err
	}
	return check("noc_stall", s.NoCStall, 1)
}

// Stats accumulates what one run actually injected.
type Stats struct {
	// AccessFaults / AccessExtraCycles count injected shared-memory
	// access stalls and their total cycles.
	AccessFaults      int64 `json:"access_faults"`
	AccessExtraCycles int64 `json:"access_extra_cycles"`
	// ExecFaults / ExecExtraCycles count inflated tasks and the total
	// extra compute cycles.
	ExecFaults      int64 `json:"exec_faults"`
	ExecExtraCycles int64 `json:"exec_extra_cycles"`
	// LinkStalls / LinkStallCycles count injected NoC link stalls.
	LinkStalls      int64 `json:"link_stalls"`
	LinkStallCycles int64 `json:"link_stall_cycles"`
}

// Total is the total number of injected cycles across all fault kinds.
func (s Stats) Total() int64 {
	return s.AccessExtraCycles + s.ExecExtraCycles + s.LinkStallCycles
}

// Injector draws site-deterministic fault decisions for one simulation
// run. It is NOT goroutine-safe: create one per run (the draw itself is
// stateless, but Stats accumulation is not).
type Injector struct {
	spec  Spec
	stats Stats
}

// New returns an injector for the spec, or nil when the spec injects
// nothing — callers gate every hook on a nil check so the zero-fault
// path stays bit-identical to the uninjected simulator.
func New(spec Spec) *Injector {
	if !spec.Enabled() {
		return nil
	}
	return &Injector{spec: spec}
}

// Spec returns the injector's scenario.
func (in *Injector) Spec() Spec { return in.spec }

// Stats returns what has been injected so far.
func (in *Injector) Stats() Stats { return in.stats }

// Site kinds feeding the hash, so distinct fault classes at identical
// coordinates draw independently.
const (
	siteAccess uint64 = 0x61636365 // "acce"
	siteExec   uint64 = 0x65786563 // "exec"
	siteLink   uint64 = 0x6c696e6b // "link"
)

// mix64 is the splitmix64 finalizer: a cheap, high-quality bijective
// mixer used to hash site coordinates into uniform draws.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform returns a deterministic draw in [0, 1) for the site
// (kind, a, b) under the injector's seed. The value depends only on the
// seed and site coordinates — never on call order — so injection is
// stable across event-loop refactorings and goroutine schedules.
func (in *Injector) uniform(kind, a, b uint64) float64 {
	h := mix64(uint64(in.spec.Seed) ^ mix64(kind^mix64(a^mix64(b))))
	return float64(h>>11) / float64(1<<53)
}

// draw scales a uniform site draw into [0, level*budget], clamped to
// the budget itself (level <= 1 keeps it there by construction; the
// clamp guards float rounding).
func (in *Injector) draw(kind, a, b uint64, level float64, budget int64) int64 {
	if level <= 0 || budget <= 0 {
		return 0
	}
	d := int64(in.uniform(kind, a, b) * level * float64(budget+1))
	if d > budget {
		d = budget
	}
	if d < 0 {
		d = 0
	}
	return d
}

// AccessDelay returns the extra stall for the access-th shared-memory
// access of task, given the access's remaining interference budget (the
// analysis' per-access interference allowance minus the arbitration wait
// the access actually suffered). The result never exceeds the budget, so
// every access stays within the modeled worst case.
func (in *Injector) AccessDelay(task, access int, budget int64) int64 {
	d := in.draw(siteAccess, uint64(task), uint64(access), in.spec.AccessJitter, budget)
	if d > 0 {
		in.stats.AccessFaults++
		in.stats.AccessExtraCycles += d
	}
	return d
}

// ExecExtra returns the extra compute cycles injected into a task, given
// the task's actual isolated trace time, its code-level WCET bound on
// the assigned core, and its inflated per-task bound (WCET plus analyzed
// interference).
//
// Levels <= 1 inflate deterministically into the code-level headroom
// (bound-preserving: isolated time stays <= wcet). Levels > 1 are the
// negative-test mode: the task is pushed strictly beyond its inflated
// per-task bound, guaranteeing the soundness check trips.
func (in *Injector) ExecExtra(task int, isolated, wcet, taskBound int64) int64 {
	level := in.spec.ExecInflation
	if level <= 0 {
		return 0
	}
	var extra int64
	if level <= 1 {
		headroom := wcet - isolated
		if headroom <= 0 {
			return 0
		}
		// Deterministic scaling (not a random draw): the sweep levels of
		// E10 then map monotonically onto injected stress.
		extra = int64(level * float64(headroom))
	} else {
		over := taskBound - isolated
		if over < 0 {
			over = 0
		}
		extra = over + int64((level-1)*float64(taskBound)) + 1
	}
	if extra <= 0 {
		return 0
	}
	in.stats.ExecFaults++
	in.stats.ExecExtraCycles += extra
	return extra
}

// LinkStall returns the transient stall injected while a link serves the
// seq-th packet of a flow at the given hop, with budget the smallest
// remaining per-hop WRR waiting allowance among the packets currently
// waiting at the link. The result never exceeds the budget, so no
// waiting packet is pushed past its analytic per-hop allowance.
func (in *Injector) LinkStall(flow, seq, hop int, budget int64) int64 {
	d := in.draw(siteLink, uint64(flow)<<20|uint64(hop), uint64(seq), in.spec.NoCStall, budget)
	if d > 0 {
		in.stats.LinkStalls++
		in.stats.LinkStallCycles += d
	}
	return d
}

// Violation is one detected breach of the analytic bounds: structured
// (machine-readable) so over-bound injection is reported, not silently
// absorbed into a boolean.
type Violation struct {
	// Kind is "task-start", "task-finish", "exec-span", or "makespan".
	Kind string `json:"kind"`
	// Task is the task id, or -1 for run-global violations.
	Task int `json:"task"`
	// Observed is the measured value; Bound the analytic one it broke.
	Observed int64 `json:"observed"`
	Bound    int64 `json:"bound"`
}

// String renders the violation.
func (v Violation) String() string {
	switch {
	case v.Kind == "task-start":
		return fmt.Sprintf("task-start: task %d started at %d before release %d", v.Task, v.Observed, v.Bound)
	case v.Task >= 0:
		return fmt.Sprintf("%s: task %d observed %d > bound %d", v.Kind, v.Task, v.Observed, v.Bound)
	}
	return fmt.Sprintf("%s: observed %d > bound %d", v.Kind, v.Observed, v.Bound)
}
