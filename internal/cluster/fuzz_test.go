package cluster

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzHashRing drives the placement invariants with fuzzer-chosen
// member sets and keys: ownership is a member, Order is an owner-led
// permutation, OwnerBounded honors the bound semantics, and — the
// rendezvous property — removing the key's owner reassigns only that
// key's placement while removing a non-owner never changes it.
func FuzzHashRing(f *testing.F) {
	f.Add("a,b,c", "some-key", 3)
	f.Add("http://r1:1,http://r2:1,http://r3:1,http://r4:1", "sha256:deadbeef", 1)
	f.Add("x", "", 0)
	f.Add("", "key", 2)
	f.Add("m0,m1,m2,m3,m4,m5,m6,m7", "aaaaaaaaaaaaaaaaaaaaaaaa", -1)

	f.Fuzz(func(t *testing.T, memberCSV, key string, bound int) {
		var members []string
		for _, m := range strings.Split(memberCSV, ",") {
			if m != "" {
				members = append(members, m)
			}
		}
		r := NewRing(members)

		owner := r.Owner(key)
		if r.Len() == 0 {
			if owner != "" {
				t.Fatalf("empty ring owner = %q", owner)
			}
			return
		}

		// Ownership lands on a member and is deterministic.
		found := false
		for _, m := range r.Members() {
			if m == owner {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("owner %q not in member set %v", owner, r.Members())
		}
		if again := r.Owner(key); again != owner {
			t.Fatalf("owner not deterministic: %q then %q", owner, again)
		}

		// Order: owner-led permutation of the member set.
		order := r.Order(key)
		if len(order) != r.Len() {
			t.Fatalf("order has %d entries for %d members", len(order), r.Len())
		}
		if order[0] != owner {
			t.Fatalf("order[0] = %q, owner = %q", order[0], owner)
		}
		seen := make(map[string]bool, len(order))
		for _, m := range order {
			if seen[m] {
				t.Fatalf("order repeats member %q", m)
			}
			seen[m] = true
		}

		// Bounded placement: an all-zero load keeps the owner; an
		// all-saturated load falls back to the owner rather than
		// rejecting.
		if got := r.OwnerBounded(key, bound, func(string) int { return 0 }); got != owner {
			t.Fatalf("OwnerBounded with zero load = %q, want owner %q", got, owner)
		}
		if bound > 0 {
			if got := r.OwnerBounded(key, bound, func(string) int { return bound }); got != owner {
				t.Fatalf("OwnerBounded all-saturated = %q, want owner %q", got, owner)
			}
		}

		// Minimal remap: removing the owner promotes exactly the next
		// preference; removing any non-owner leaves the key untouched.
		if r.Len() > 1 {
			without := func(drop string) *Ring {
				var rest []string
				for _, m := range r.Members() {
					if m != drop {
						rest = append(rest, m)
					}
				}
				return NewRing(rest)
			}
			if got := without(owner).Owner(key); got != order[1] {
				t.Fatalf("removing owner reassigned to %q, want next preference %q", got, order[1])
			}
			nonOwner := order[len(order)-1]
			if nonOwner != owner {
				if got := without(nonOwner).Owner(key); got != owner {
					t.Fatalf("removing non-owner %q moved key to %q", nonOwner, got)
				}
			}
		}

		// Adding a member moves the key only if the new member wins.
		added := fmt.Sprintf("fuzz-added-%d", bound)
		grown := NewRing(append(append([]string{}, r.Members()...), added))
		if grown.Len() > r.Len() { // added was genuinely new
			if got := grown.Owner(key); got != owner && got != added {
				t.Fatalf("adding %q moved key from %q to unrelated %q", added, owner, got)
			}
		}
	})
}
