package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// keys generates n distinct synthetic job keys (hex-ish content
// addresses in real use; any distinct strings exercise the same code).
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("sha256:%08x-job-key", i*2654435761)
	}
	return out
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:8321", i)
	}
	return out
}

func TestNewRingSortsAndDedups(t *testing.T) {
	r := NewRing([]string{"http://b", "http://a", "http://b", "", "http://a"})
	want := []string{"http://a", "http://b"}
	if !reflect.DeepEqual(r.Members(), want) {
		t.Fatalf("members = %v, want %v", r.Members(), want)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
}

func TestOwnerEmptyRing(t *testing.T) {
	if got := NewRing(nil).Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
}

// Ownership must be a pure function of (member set, key): the same set
// in any insertion order places every key identically.
func TestOwnerIndependentOfMemberOrder(t *testing.T) {
	ms := members(5)
	a := NewRing(ms)
	b := NewRing([]string{ms[3], ms[0], ms[4], ms[2], ms[1]})
	for _, k := range keys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %q: owner depends on member order (%q vs %q)",
				k, a.Owner(k), b.Owner(k))
		}
	}
}

// Balance: over many keys each member's share must concentrate around
// 1/n. The bound (max <= 1.2x mean over 20k keys at n=5) is far looser
// than what a correct avalanche-mixed weight gives, but tight enough to
// catch a biased weight function immediately.
func TestOwnerBalance(t *testing.T) {
	const nKeys = 20000
	ms := members(5)
	r := NewRing(ms)
	counts := make(map[string]int, len(ms))
	for _, k := range keys(nKeys) {
		counts[r.Owner(k)]++
	}
	mean := float64(nKeys) / float64(len(ms))
	for _, m := range ms {
		c := counts[m]
		if c == 0 {
			t.Fatalf("member %s owns no keys", m)
		}
		if ratio := float64(c) / mean; ratio > 1.2 || ratio < 0.8 {
			t.Errorf("member %s owns %d keys (%.2fx mean); want within [0.8, 1.2]x", m, c, ratio)
		}
	}
}

// Removing a member must move exactly the removed member's keys:
// rendezvous hashing's defining property. Every key owned by a survivor
// keeps its owner bit-for-bit.
func TestRemoveMovesOnlyRemovedKeys(t *testing.T) {
	ms := members(5)
	full := NewRing(ms)
	removed := ms[2]
	smaller := NewRing(append(append([]string{}, ms[:2]...), ms[3:]...))
	moved := 0
	for _, k := range keys(5000) {
		before, after := full.Owner(k), smaller.Owner(k)
		if before == removed {
			moved++
			if after == removed {
				t.Fatalf("key %q still owned by removed member", k)
			}
			continue
		}
		if before != after {
			t.Fatalf("key %q moved from surviving member %q to %q on unrelated removal",
				k, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; balance is broken")
	}
}

// Adding a member must move keys only TO the new member (a key whose
// old maximum still wins keeps its owner), and the moved fraction must
// be near 1/(n+1).
func TestAddMovesOnlyToNewMember(t *testing.T) {
	const nKeys = 20000
	ms := members(5)
	before := NewRing(ms)
	added := "http://replica-new:8321"
	after := NewRing(append(append([]string{}, ms...), added))
	moved := 0
	for _, k := range keys(nKeys) {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == oa {
			continue
		}
		if oa != added {
			t.Fatalf("key %q moved %q -> %q, not to the added member", k, ob, oa)
		}
		moved++
	}
	frac := float64(moved) / float64(nKeys)
	expect := 1.0 / float64(len(ms)+1)
	if frac > 2*expect || frac < expect/2 {
		t.Errorf("add moved %.3f of keys; want near 1/(n+1) = %.3f", frac, expect)
	}
}

// Order must be a permutation of the members, start with the owner, and
// be deterministic.
func TestOrderIsOwnerLedPermutation(t *testing.T) {
	ms := members(6)
	r := NewRing(ms)
	for _, k := range keys(200) {
		order := r.Order(k)
		if len(order) != len(ms) {
			t.Fatalf("order has %d entries, want %d", len(order), len(ms))
		}
		if order[0] != r.Owner(k) {
			t.Fatalf("order[0] = %q, owner = %q", order[0], r.Owner(k))
		}
		seen := make(map[string]bool, len(order))
		for _, m := range order {
			if seen[m] {
				t.Fatalf("member %q appears twice in order", m)
			}
			seen[m] = true
		}
		if !reflect.DeepEqual(order, r.Order(k)) {
			t.Fatalf("order not deterministic for key %q", k)
		}
	}
}

func TestOwnerBounded(t *testing.T) {
	ms := members(4)
	r := NewRing(ms)
	k := "some-key"
	order := r.Order(k)

	// bound <= 0 disables the load check.
	if got := r.OwnerBounded(k, 0, func(string) int { t.Fatal("load consulted"); return 0 }); got != order[0] {
		t.Fatalf("unbounded owner = %q, want %q", got, order[0])
	}
	// Owner below bound: stays put.
	if got := r.OwnerBounded(k, 2, func(string) int { return 0 }); got != order[0] {
		t.Fatalf("underloaded owner = %q, want %q", got, order[0])
	}
	// Owner at bound: falls to the next preference.
	load := func(m string) int {
		if m == order[0] {
			return 2
		}
		return 0
	}
	if got := r.OwnerBounded(k, 2, load); got != order[1] {
		t.Fatalf("overloaded owner fell to %q, want %q", got, order[1])
	}
	// Everyone at bound: the plain owner wins rather than rejecting.
	if got := r.OwnerBounded(k, 2, func(string) int { return 99 }); got != order[0] {
		t.Fatalf("all-overloaded owner = %q, want %q", got, order[0])
	}
}

// TestMembershipFixture pins the exact placements of a 5 -> 4 -> 6
// membership walk for a fixed key set, so any change to the weight
// function or tie-break rule — which would silently remap every
// deployed cluster's shards — fails loudly. The goldens were generated
// from this implementation and are frozen on purpose.
func TestMembershipFixture(t *testing.T) {
	fixKeys := []string{"alpha", "bravo", "charlie", "delta", "echo",
		"foxtrot", "golf", "hotel", "india", "juliett"}
	five := NewRing(members(5))
	four := NewRing(members(4)) // replica-4 removed
	six := NewRing(members(6))  // replica-4 back, replica-5 added

	got := map[string][]string{"5": {}, "4": {}, "6": {}}
	for _, k := range fixKeys {
		got["5"] = append(got["5"], five.Owner(k))
		got["4"] = append(got["4"], four.Owner(k))
		got["6"] = append(got["6"], six.Owner(k))
	}
	want := map[string][]string{
		"5": goldenOwners5,
		"4": goldenOwners4,
		"6": goldenOwners6,
	}
	for phase, w := range want {
		if !reflect.DeepEqual(got[phase], w) {
			t.Errorf("phase %s owners changed:\n got %v\nwant %v", phase, got[phase], w)
		}
	}
}
