package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubReplica is one fake analysis replica: counts hits and serves a
// configurable status/body.
type stubReplica struct {
	srv    *httptest.Server
	hits   atomic.Int64
	status atomic.Int64
	block  chan struct{} // non-nil: handler waits until closed
}

func newStubReplica(t *testing.T) *stubReplica {
	t.Helper()
	s := &stubReplica{}
	s.status.Store(http.StatusOK)
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.hits.Add(1)
		if s.block != nil {
			<-s.block
		}
		st := int(s.status.Load())
		w.Header().Set("X-Argo-Cache", "miss")
		w.WriteHeader(st)
		fmt.Fprintf(w, `{"served_by":%q}`, s.srv.URL)
	}))
	t.Cleanup(s.srv.Close)
	return s
}

// stubs starts n replicas and returns them keyed by URL.
func stubs(t *testing.T, n int) (urls []string, byURL map[string]*stubReplica) {
	t.Helper()
	byURL = make(map[string]*stubReplica, n)
	for i := 0; i < n; i++ {
		s := newStubReplica(t)
		urls = append(urls, s.srv.URL)
		byURL[s.srv.URL] = s
	}
	return urls, byURL
}

func TestForwardRoutesToOwner(t *testing.T) {
	urls, byURL := stubs(t, 3)
	c := New(Options{Peers: urls})
	for _, key := range keys(20) {
		owner := c.Ring().Owner(key)
		res, err := c.Forward(context.Background(), key, "/v1/compile", []byte("{}"))
		if err != nil {
			t.Fatalf("forward: %v", err)
		}
		if res.Replica != owner {
			t.Fatalf("key %q served by %q, owner is %q", key, res.Replica, owner)
		}
		if res.Outcome != "miss" || res.Status != http.StatusOK {
			t.Fatalf("unexpected result %+v", res)
		}
	}
	var total int64
	for _, s := range byURL {
		total += s.hits.Load()
	}
	if total != 20 {
		t.Fatalf("replicas saw %d requests, want 20", total)
	}
	if st := c.Stats(); st.Forwards != 20 || st.ReplicaErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestForwardRoutesAroundFailingReplica(t *testing.T) {
	urls, byURL := stubs(t, 3)
	c := New(Options{Peers: urls, Quarantine: time.Hour})
	key := keys(1)[0]
	order := c.Ring().Order(key)
	byURL[order[0]].status.Store(http.StatusInternalServerError)

	res, err := c.Forward(context.Background(), key, "/v1/compile", []byte("{}"))
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	if res.Replica != order[1] {
		t.Fatalf("served by %q, want second preference %q", res.Replica, order[1])
	}
	if st := c.Stats(); st.ReplicaErrors != 1 {
		t.Fatalf("replica errors = %d, want 1", st.ReplicaErrors)
	}

	// The failed owner is quarantined: the next forward for the same key
	// goes straight to the fallback without probing it again.
	before := byURL[order[0]].hits.Load()
	if _, err := c.Forward(context.Background(), key, "/v1/compile", []byte("{}")); err != nil {
		t.Fatalf("second forward: %v", err)
	}
	if got := byURL[order[0]].hits.Load(); got != before {
		t.Fatalf("quarantined replica probed again (%d -> %d hits)", before, got)
	}
}

func TestForwardPassesThrough4xx(t *testing.T) {
	urls, byURL := stubs(t, 2)
	c := New(Options{Peers: urls})
	key := keys(1)[0]
	owner := c.Ring().Owner(key)
	byURL[owner].status.Store(http.StatusUnprocessableEntity)

	res, err := c.Forward(context.Background(), key, "/v1/compile", []byte("{}"))
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	if res.Status != http.StatusUnprocessableEntity || res.Replica != owner {
		t.Fatalf("result %+v; want 422 from owner %q (no retry on 4xx)", res, owner)
	}
	if st := c.Stats(); st.ReplicaErrors != 0 {
		t.Fatalf("4xx counted as replica error: %+v", st)
	}
	// A deterministic client error must not poison the hot set either.
	if n := c.HotKeys(); n != 0 {
		t.Fatalf("4xx recorded in hot set (%d entries)", n)
	}
}

func TestForwardAllReplicasDown(t *testing.T) {
	urls, byURL := stubs(t, 2)
	for _, s := range byURL {
		s.status.Store(http.StatusInternalServerError)
	}
	c := New(Options{Peers: urls})
	if _, err := c.Forward(context.Background(), keys(1)[0], "/v1/compile", []byte("{}")); err == nil {
		t.Fatal("forward succeeded with every replica failing")
	}
	if st := c.Stats(); st.ReplicaErrors < 2 {
		t.Fatalf("replica errors = %d, want >= 2", st.ReplicaErrors)
	}
}

func TestForwardBoundedLoadFallsThrough(t *testing.T) {
	a, b := newStubReplica(t), newStubReplica(t)
	a.block = make(chan struct{})
	b.block = make(chan struct{})
	c := New(Options{Peers: []string{a.srv.URL, b.srv.URL}, MaxInflight: 1})
	key := keys(1)[0]
	order := c.Ring().Order(key)
	st := map[string]*stubReplica{a.srv.URL: a, b.srv.URL: b}

	// Park one request on the owner, filling its load bound.
	first := make(chan error, 1)
	go func() {
		_, err := c.Forward(context.Background(), key, "/v1/compile", []byte("{}"))
		first <- err
	}()
	waitFor(t, func() bool { return st[order[0]].hits.Load() == 1 })

	// The second forward must skip the loaded owner for the fallback.
	second := make(chan *Result, 1)
	go func() {
		res, err := c.Forward(context.Background(), key, "/v1/compile", []byte("{}"))
		if err != nil {
			t.Errorf("second forward: %v", err)
		}
		second <- res
	}()
	waitFor(t, func() bool { return st[order[1]].hits.Load() == 1 })
	close(st[order[1]].block)
	if res := <-second; res.Replica != order[1] {
		t.Fatalf("second request served by %q, want fallback %q", res.Replica, order[1])
	}
	close(st[order[0]].block)
	if err := <-first; err != nil {
		t.Fatalf("first forward: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHangingReplicaTimesOutAndFallsThrough(t *testing.T) {
	hang, ok := newStubReplica(t), newStubReplica(t)
	hang.block = make(chan struct{}) // never closed: the replica hangs
	defer close(hang.block)
	c := New(Options{Peers: []string{hang.srv.URL, ok.srv.URL}, ForwardTimeout: 50 * time.Millisecond})

	// Pick a key owned by the hanging replica so the timeout path runs.
	var key string
	for _, k := range keys(100) {
		if c.Ring().Owner(k) == hang.srv.URL {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key owned by hanging replica in sample")
	}
	t0 := time.Now()
	res, err := c.Forward(context.Background(), key, "/v1/compile", []byte("{}"))
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	if res.Replica != ok.srv.URL {
		t.Fatalf("served by %q, want healthy fallback %q", res.Replica, ok.srv.URL)
	}
	if e := time.Since(t0); e > 2*time.Second {
		t.Fatalf("fallback took %v; per-attempt timeout not honored", e)
	}
	if st := c.Stats(); st.ReplicaErrors != 1 {
		t.Fatalf("replica errors = %d, want 1 (the timeout)", st.ReplicaErrors)
	}
}

func TestWarmReplicationOnMembershipChange(t *testing.T) {
	urls, _ := stubs(t, 2)
	grown := newStubReplica(t)
	c := New(Options{Peers: urls, WarmWorkers: 2})

	// Serve enough keys that some must move to the new member.
	allKeys := keys(32)
	for _, k := range allKeys {
		if _, err := c.Forward(context.Background(), k, "/v1/compile", []byte(`{"k":"`+k+`"}`)); err != nil {
			t.Fatalf("forward: %v", err)
		}
	}
	if got := c.HotKeys(); got != len(allKeys) {
		t.Fatalf("hot set has %d keys, want %d", got, len(allKeys))
	}

	old := c.Ring()
	c.SetMembers(append(append([]string{}, urls...), grown.srv.URL))
	next := c.Ring()
	var moved int64
	for _, k := range allKeys {
		if old.Owner(k) != next.Owner(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key moved on scale-up; fixture broken")
	}
	waitFor(t, func() bool { return !c.Rebalancing() })
	if got := c.Stats().Rebalances; got != moved {
		t.Fatalf("rebalances = %d, want %d (every moved hot key replayed)", got, moved)
	}
	// Every warm replay landed on the member now owning the key — for
	// moved keys that is overwhelmingly the new replica.
	if grown.hits.Load() == 0 {
		t.Fatal("new replica received no warm traffic")
	}
}

func TestSetMembersNoMovesNoRebalance(t *testing.T) {
	urls, _ := stubs(t, 2)
	c := New(Options{Peers: urls})
	if _, err := c.Forward(context.Background(), keys(1)[0], "/v1/compile", []byte("{}")); err != nil {
		t.Fatalf("forward: %v", err)
	}
	c.SetMembers(urls) // identical membership: nothing moves
	if c.Rebalancing() {
		t.Fatal("rebalancing flagged for a no-op membership change")
	}
	if got := c.Stats().Rebalances; got != 0 {
		t.Fatalf("rebalances = %d, want 0", got)
	}
}

func TestHotSetBounded(t *testing.T) {
	urls, _ := stubs(t, 1)
	c := New(Options{Peers: urls, HotSet: 8})
	for _, k := range keys(50) {
		if _, err := c.Forward(context.Background(), k, "/v1/compile", []byte("{}")); err != nil {
			t.Fatalf("forward: %v", err)
		}
	}
	if got := c.HotKeys(); got != 8 {
		t.Fatalf("hot set has %d keys, want the 8-entry bound", got)
	}
}

func TestHealthReportsQuarantine(t *testing.T) {
	urls, byURL := stubs(t, 2)
	c := New(Options{Peers: urls, Quarantine: time.Hour})
	key := keys(1)[0]
	owner := c.Ring().Owner(key)
	byURL[owner].status.Store(http.StatusInternalServerError)
	if _, err := c.Forward(context.Background(), key, "/v1/compile", []byte("{}")); err != nil {
		t.Fatalf("forward: %v", err)
	}
	downSeen := false
	for _, h := range c.Health() {
		if h.URL == owner && h.Down {
			downSeen = true
		}
	}
	if !downSeen {
		t.Fatalf("health does not report quarantined owner %q as down: %+v", owner, c.Health())
	}
}

// --- load generator ---------------------------------------------------------

func TestRunLoadReport(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 5 {
		case 0:
			w.WriteHeader(http.StatusTooManyRequests)
		case 1:
			w.WriteHeader(http.StatusInternalServerError)
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer srv.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		URL:         srv.URL,
		Concurrency: 3,
		Requests:    50,
		Body:        func(i int) []byte { return []byte("{}") },
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Requests != 50 {
		t.Fatalf("requests = %d, want 50", rep.Requests)
	}
	if rep.OK+rep.Shed+rep.Errors != rep.Requests {
		t.Fatalf("counts don't add up: %+v", rep)
	}
	if rep.Shed == 0 || rep.Errors == 0 || rep.OK == 0 {
		t.Fatalf("expected a mix of outcomes: %+v", rep)
	}
	if rep.RPS <= 0 || rep.P50 <= 0 || rep.P99 < rep.P50 || rep.MaxLatency < rep.P99 {
		t.Fatalf("implausible latency stats: %+v", rep)
	}
	if got := rep.StatusCounts[http.StatusTooManyRequests]; got != rep.Shed {
		t.Fatalf("status counts inconsistent: %+v", rep)
	}
	if rep.ShedRate() <= 0 || rep.ShedRate() >= 1 {
		t.Fatalf("shed rate = %v", rep.ShedRate())
	}
	if s := rep.String(); !strings.Contains(s, "requests 50") {
		t.Fatalf("report string %q", s)
	}
}

func TestRunLoadValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := RunLoad(ctx, LoadConfig{}); err == nil {
		t.Fatal("no URL accepted")
	}
	if _, err := RunLoad(ctx, LoadConfig{URL: "http://x"}); err == nil {
		t.Fatal("no body generator accepted")
	}
	if _, err := RunLoad(ctx, LoadConfig{URL: "http://x", Body: func(int) []byte { return nil }}); err == nil {
		t.Fatal("no budget accepted")
	}
}

func TestUniqueCompileBodiesDistinct(t *testing.T) {
	a, b := UniqueCompileBody(1, ""), UniqueCompileBody(2, "")
	if string(a) == string(b) {
		t.Fatal("unique bodies identical")
	}
	if !strings.Contains(string(a), `"platform":"xentium4"`) {
		t.Fatalf("default platform missing: %s", a)
	}
	if string(UseCaseCompileBody("polka", "p")) != string(UseCaseCompileBody("polka", "p")) {
		t.Fatal("use-case body not constant")
	}
}
