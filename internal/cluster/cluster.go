package cluster

import (
	"bytes"
	"container/list"
	"context"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Process-wide cluster counters, visible on /debug/vars. Per-cluster
// counts are available via Cluster.Stats (tests use those); the expvars
// aggregate across every coordinator in the process.
var (
	evForwards      = expvar.NewInt("argo_cluster_forwards")
	evLocalHits     = expvar.NewInt("argo_cluster_local_hits")
	evRebalances    = expvar.NewInt("argo_cluster_rebalances")
	evReplicaErrors = expvar.NewInt("argo_cluster_replica_errors")
)

// Options tunes one cluster coordinator.
type Options struct {
	// Peers are the replica base URLs jobs are sharded across.
	Peers []string
	// Client issues the forwarded requests (default: a dedicated client;
	// per-attempt deadlines come from ForwardTimeout).
	Client *http.Client
	// ForwardTimeout bounds each forwarded attempt, so a hanging replica
	// costs one timeout before the coordinator falls through to the next
	// replica in preference order (default 30s).
	ForwardTimeout time.Duration
	// Quarantine is how long a replica that failed a forward is skipped
	// before it is probed again (default 1s).
	Quarantine time.Duration
	// HotSet bounds the LRU of recently served keys kept for warm
	// replication on membership change (default 512; <0 disables).
	HotSet int
	// WarmWorkers bounds concurrent warm-replication requests during a
	// rebalance (default 4).
	WarmWorkers int
	// MaxInflight is the bounded-load fallback: a replica with this many
	// forwards already in flight is skipped in favor of the next replica
	// in preference order (0: unbounded).
	MaxInflight int
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = 30 * time.Second
	}
	if o.Quarantine <= 0 {
		o.Quarantine = time.Second
	}
	if o.HotSet == 0 {
		o.HotSet = 512
	}
	if o.HotSet < 0 {
		o.HotSet = 0
	}
	if o.WarmWorkers <= 0 {
		o.WarmWorkers = 4
	}
	return o
}

// replica is the coordinator's view of one member's health and load.
type replica struct {
	inflight  atomic.Int64
	downUntil atomic.Int64 // unix nanos; 0 = healthy
}

func (r *replica) down(now time.Time) bool {
	return now.UnixNano() < r.downUntil.Load()
}

// hotEntry is one warm-replication descriptor: replaying Body against
// Path on a key's new owner reproduces (and therefore caches) the
// result there, because the service's caches are content-addressed.
type hotEntry struct {
	key  string
	path string
	body []byte
}

// Result is one successfully forwarded response.
type Result struct {
	// Replica is the base URL of the member that served the request.
	Replica string
	// Status is the replica's HTTP status (may be a 4xx client error —
	// those are deterministic and are passed through, not retried).
	Status int
	// Outcome is the replica's X-Argo-Cache header (hit/miss/dedup).
	Outcome string
	// Body is the replica's response body.
	Body []byte
}

// Stats is a point-in-time snapshot of the coordinator counters.
type Stats struct {
	Members int `json:"members"`
	// Forwards counts requests served by forwarding to a replica.
	Forwards int64 `json:"forwards"`
	// LocalHits counts requests served from the coordinator's own cache
	// tier without touching a replica.
	LocalHits int64 `json:"local_hits"`
	// Rebalances counts hot keys replicated to a new owner on
	// membership change.
	Rebalances int64 `json:"rebalances"`
	// ReplicaErrors counts forward attempts that failed (transport
	// error, timeout, or 5xx) and fell through to the next replica.
	ReplicaErrors int64 `json:"replica_errors"`
	// Rebalancing reports whether a warm replication is in flight.
	Rebalancing bool `json:"rebalancing"`
}

// ReplicaHealth is one member's row in a topology listing.
type ReplicaHealth struct {
	URL      string `json:"url"`
	Down     bool   `json:"down"`
	InFlight int64  `json:"in_flight"`
}

// Cluster is the coordinator state: an atomically swapped placement
// ring, per-replica health and load, and the hot-key set replicated on
// membership change. All methods are goroutine-safe.
type Cluster struct {
	opt    Options
	client *http.Client

	ring atomic.Pointer[Ring]

	mu   sync.Mutex
	reps map[string]*replica
	hot  map[string]*list.Element
	lru  *list.List // of *hotEntry; front = most recently used

	rebalancing atomic.Int64 // number of in-flight warm replications

	forwards      atomic.Int64
	localHits     atomic.Int64
	rebalances    atomic.Int64
	replicaErrors atomic.Int64
}

// New builds a coordinator over opt.Peers.
func New(opt Options) *Cluster {
	opt = opt.withDefaults()
	c := &Cluster{
		opt:    opt,
		client: opt.Client,
		reps:   make(map[string]*replica),
		hot:    make(map[string]*list.Element),
		lru:    list.New(),
	}
	c.ring.Store(NewRing(opt.Peers))
	return c
}

// Ring returns the current placement snapshot.
func (c *Cluster) Ring() *Ring { return c.ring.Load() }

// Members returns the current member set (sorted).
func (c *Cluster) Members() []string { return c.Ring().Members() }

// Rebalancing reports whether a warm replication is in flight (the
// service flips readiness off while it is, so load balancers pause new
// routing until the moved shards are warm).
func (c *Cluster) Rebalancing() bool { return c.rebalancing.Load() > 0 }

// CountLocalHit records one request served from the coordinator's own
// cache tier.
func (c *Cluster) CountLocalHit() {
	c.localHits.Add(1)
	evLocalHits.Add(1)
}

// Stats snapshots the coordinator counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		Members:       c.Ring().Len(),
		Forwards:      c.forwards.Load(),
		LocalHits:     c.localHits.Load(),
		Rebalances:    c.rebalances.Load(),
		ReplicaErrors: c.replicaErrors.Load(),
		Rebalancing:   c.Rebalancing(),
	}
}

// Health lists every member with its health and in-flight load.
func (c *Cluster) Health() []ReplicaHealth {
	now := time.Now()
	members := c.Members()
	out := make([]ReplicaHealth, 0, len(members))
	for _, m := range members {
		rep := c.replicaState(m)
		out = append(out, ReplicaHealth{
			URL:      m,
			Down:     rep.down(now),
			InFlight: rep.inflight.Load(),
		})
	}
	return out
}

func (c *Cluster) replicaState(m string) *replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, ok := c.reps[m]
	if !ok {
		rep = &replica{}
		c.reps[m] = rep
	}
	return rep
}

// Forward routes one request to the replica owning key, falling through
// the preference order past replicas that are down, over their load
// bound, or that fail the attempt (transport error, per-attempt
// timeout, or 5xx — those mark the replica down for the quarantine and
// count as replica errors). 4xx responses are deterministic client
// errors and are returned, not retried. Successful forwards are
// recorded in the hot set for warm replication on membership change.
//
// An error return means every member failed; callers fall back to local
// execution so no request is ever silently dropped.
func (c *Cluster) Forward(ctx context.Context, key, path string, body []byte) (*Result, error) {
	ring := c.Ring()
	if ring.Len() == 0 {
		return nil, fmt.Errorf("cluster: no replicas")
	}
	order := ring.Order(key)
	now := time.Now()

	// First pass honors health and the load bound; if that skips every
	// member (all down or all at the bound), a second desperate pass
	// tries the skipped ones anyway — a quarantined replica beats
	// refusing outright.
	tried := make(map[string]bool, len(order))
	var lastErr error
	for pass := 0; pass < 2; pass++ {
		for _, m := range order {
			if tried[m] {
				continue
			}
			rep := c.replicaState(m)
			if pass == 0 {
				if rep.down(now) {
					continue
				}
				if c.opt.MaxInflight > 0 && rep.inflight.Load() >= int64(c.opt.MaxInflight) {
					continue
				}
			}
			tried[m] = true
			res, err := c.tryOne(ctx, rep, m, path, body)
			if err != nil {
				lastErr = err
				c.markDown(rep, m, err)
				if ctx.Err() != nil {
					return nil, lastErr
				}
				continue
			}
			rep.downUntil.Store(0) // success: the replica is healthy
			c.forwards.Add(1)
			evForwards.Add(1)
			if res.Status == http.StatusOK {
				c.record(key, path, body)
			}
			return res, nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no reachable replica for key %.16s", key)
	}
	return nil, lastErr
}

// Call issues one request to a specific member — the remote candidate
// worker path, where placement is by worker slot rather than by key.
// Failures quarantine the member like a failed forward; the caller is
// expected to fall back to local evaluation so no work is dropped.
func (c *Cluster) Call(ctx context.Context, member, path string, body []byte) (*Result, error) {
	rep := c.replicaState(member)
	res, err := c.tryOne(ctx, rep, member, path, body)
	if err != nil {
		c.markDown(rep, member, err)
		return nil, err
	}
	rep.downUntil.Store(0)
	c.forwards.Add(1)
	evForwards.Add(1)
	return res, nil
}

// tryOne issues one forwarded attempt under the per-attempt timeout.
func (c *Cluster) tryOne(ctx context.Context, rep *replica, member, path string, body []byte) (*Result, error) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	actx, cancel := context.WithTimeout(ctx, c.opt.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, member+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", member, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", member, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: read: %w", member, err)
	}
	if resp.StatusCode >= 500 {
		return nil, fmt.Errorf("cluster: %s: status %d: %.200s", member, resp.StatusCode, data)
	}
	return &Result{
		Replica: member,
		Status:  resp.StatusCode,
		Outcome: resp.Header.Get("X-Argo-Cache"),
		Body:    data,
	}, nil
}

func (c *Cluster) markDown(rep *replica, member string, err error) {
	c.replicaErrors.Add(1)
	evReplicaErrors.Add(1)
	rep.downUntil.Store(time.Now().Add(c.opt.Quarantine).UnixNano())
}

// record remembers a successfully served key's request descriptor in
// the bounded hot set.
func (c *Cluster) record(key, path string, body []byte) {
	if c.opt.HotSet == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.hot[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.hot[key] = c.lru.PushFront(&hotEntry{key: key, path: path, body: body})
	if c.lru.Len() > c.opt.HotSet {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.hot, oldest.Value.(*hotEntry).key)
	}
}

// HotKeys returns the number of keys currently in the hot set.
func (c *Cluster) HotKeys() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// SetMembers swaps the member set and kicks off warm replication in the
// background: every hot key whose owner changed is replayed against its
// new owner, so a scaled-up replica set serves the moved shard from a
// warm cache instead of recomputing it under live traffic. Rebalancing
// reports true until the warm pass finishes.
func (c *Cluster) SetMembers(members []string) {
	old := c.Ring()
	next := NewRing(members)
	c.ring.Store(next)

	c.mu.Lock()
	var moves []*hotEntry
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*hotEntry)
		if old.Owner(e.key) != next.Owner(e.key) {
			moves = append(moves, e)
		}
	}
	c.mu.Unlock()
	if len(moves) == 0 {
		return
	}
	c.rebalancing.Add(1)
	go c.warm(moves)
}

// warm replays moved hot entries against their new owners on a bounded
// worker set. Failures are tolerated (the shard simply stays cold and
// the next live request recomputes it); successes count as rebalances.
func (c *Cluster) warm(moves []*hotEntry) {
	defer c.rebalancing.Add(-1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	workers := c.opt.WarmWorkers
	if workers > len(moves) {
		workers = len(moves)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(moves) || ctx.Err() != nil {
					return
				}
				e := moves[i]
				owner := c.Ring().Owner(e.key)
				if owner == "" {
					continue
				}
				rep := c.replicaState(owner)
				if _, err := c.tryOne(ctx, rep, owner, e.path, e.body); err == nil {
					c.rebalances.Add(1)
					evRebalances.Add(1)
				}
			}
		}()
	}
	wg.Wait()
}
