package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig describes one closed-loop load run: Concurrency workers
// each issue the next request as soon as the previous one completes,
// until Requests have been sent (or Duration has elapsed when Requests
// is 0). Body generates the i-th request body — returning distinct
// bodies per index produces a cache-miss workload, a constant body a
// cache-hit workload.
type LoadConfig struct {
	// URL is the target base URL (e.g. the coordinator).
	URL string
	// Path is the endpoint, default "/v1/compile".
	Path string
	// Concurrency is the closed-loop worker count (default 4).
	Concurrency int
	// Requests is the total request budget (with Duration unset, it
	// must be > 0).
	Requests int
	// Duration bounds the run in time when Requests is 0.
	Duration time.Duration
	// Body generates the i-th request body.
	Body func(i int) []byte
	// Client issues the requests (default http.DefaultClient).
	Client *http.Client
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Requests int `json:"requests"`
	// OK counts 2xx replies.
	OK int `json:"ok"`
	// Shed counts 429 load-shed replies.
	Shed int `json:"shed"`
	// Errors counts transport failures and non-2xx/non-429 replies.
	Errors int `json:"errors"`
	// StatusCounts maps HTTP status to reply count (0 = transport
	// failure).
	StatusCounts map[int]int `json:"status_counts"`
	// Elapsed is the run's wall-clock time.
	Elapsed time.Duration `json:"elapsed_ns"`
	// RPS is completed requests per second.
	RPS float64 `json:"rps"`
	// P50/P95/P99 are latency percentiles over all completed requests.
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	// MaxLatency is the slowest observed request.
	MaxLatency time.Duration `json:"max_ns"`
}

// ShedRate is the fraction of requests shed (0 when none completed).
func (r *LoadReport) ShedRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Requests)
}

// String renders the report as a one-run summary table.
func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"requests %d  ok %d  shed %d  errors %d  elapsed %v  rps %.1f  p50 %v  p95 %v  p99 %v  max %v",
		r.Requests, r.OK, r.Shed, r.Errors, r.Elapsed.Round(time.Millisecond), r.RPS,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.MaxLatency.Round(time.Microsecond))
}

// RunLoad executes one closed-loop load run and aggregates the report.
// It returns an error only for invalid configuration; request-level
// failures are counted in the report.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("loadgen: no target URL")
	}
	if cfg.Body == nil {
		return nil, fmt.Errorf("loadgen: no body generator")
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: set requests or duration")
	}
	path := cfg.Path
	if path == "" {
		path = "/v1/compile"
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 4
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	type sample struct {
		status  int // 0 = transport failure
		latency time.Duration
	}
	var (
		next    atomic.Int64
		mu      sync.Mutex
		samples []sample
	)
	next.Store(-1)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1))
				if cfg.Requests > 0 && i >= cfg.Requests {
					return
				}
				t0 := time.Now()
				status := 0
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					cfg.URL+path, bytes.NewReader(cfg.Body(i)))
				if err == nil {
					req.Header.Set("Content-Type", "application/json")
					var resp *http.Response
					if resp, err = client.Do(req); err == nil {
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						status = resp.StatusCode
					}
				}
				if err != nil && ctx.Err() != nil {
					return // run ended mid-request; don't count the cancellation
				}
				mu.Lock()
				samples = append(samples, sample{status, time.Since(t0)})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		Requests:     len(samples),
		StatusCounts: make(map[int]int),
		Elapsed:      elapsed,
	}
	lats := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		rep.StatusCounts[s.status]++
		switch {
		case s.status >= 200 && s.status < 300:
			rep.OK++
		case s.status == http.StatusTooManyRequests:
			rep.Shed++
		default:
			rep.Errors++
		}
		lats = append(lats, s.latency)
		if s.latency > rep.MaxLatency {
			rep.MaxLatency = s.latency
		}
	}
	if elapsed > 0 {
		rep.RPS = float64(len(samples)) / elapsed.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	rep.P50, rep.P95, rep.P99 = pct(0.50), pct(0.95), pct(0.99)
	return rep, nil
}

// uniqueSourceTemplate is a small but non-trivial scil model whose text
// embeds a distinct constant per request, so every generated compile is
// a guaranteed cache miss all the way down (request keys, pass caches,
// and WCET memos all hash the source text).
const uniqueSourceTemplate = `
function [outa, outb] = bench(img)
  h = size(img, 1)
  w = size(img, 2)
  tmp = zeros(h, w)
  outa = zeros(h, w)
  outb = zeros(h, w)
  for i = 1:h
    for j = 1:w
      g = img(i, j) * %d.0
      tmp(i, j) = g + 1
    end
  end
  for i = 1:h
    for j = 1:w
      outa(i, j) = tmp(i, j) * 2
      outb(i, j) = tmp(i, j) - 3
    end
  end
endfunction`

// UniqueCompileBody builds the i-th cache-miss compile request for
// RunLoad: a raw-source compile whose source text embeds i, targeting
// platform (default xentium4). Distinct i ⇒ distinct content address ⇒
// the full pipeline runs.
func UniqueCompileBody(i int, platform string) []byte {
	if platform == "" {
		platform = "xentium4"
	}
	src := fmt.Sprintf(uniqueSourceTemplate, i+2)
	body := fmt.Sprintf(`{"source":%q,"entry":"bench","args":[{"kind":"matrix","rows":8,"cols":8}],"platform":%q}`,
		src, platform)
	return []byte(body)
}

// UseCaseCompileBody builds a fixed compile request (a cache-hit
// workload once the first request has populated the cache).
func UseCaseCompileBody(usecase, platform string) []byte {
	return []byte(fmt.Sprintf(`{"usecase":%q,"platform":%q}`, usecase, platform))
}
