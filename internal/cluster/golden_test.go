package cluster

// Pinned owners for TestMembershipFixture: the 5 -> 4 -> 6 membership
// walk over the fixed key list. Generated once from this implementation
// and frozen — a diff here means the placement function changed and
// every deployed cluster's shards would silently remap.
//
// The walk shows minimal remap concretely: dropping replica-4 moves
// only "juliett" (its sole key) to replica-2; growing to six members
// moves only "charlie" and "delta" to the new replica-5 while "juliett"
// returns to replica-4.
var (
	goldenOwners5 = []string{
		"http://replica-3:8321", "http://replica-1:8321", "http://replica-1:8321",
		"http://replica-0:8321", "http://replica-1:8321", "http://replica-1:8321",
		"http://replica-1:8321", "http://replica-2:8321", "http://replica-2:8321",
		"http://replica-4:8321",
	}
	goldenOwners4 = []string{
		"http://replica-3:8321", "http://replica-1:8321", "http://replica-1:8321",
		"http://replica-0:8321", "http://replica-1:8321", "http://replica-1:8321",
		"http://replica-1:8321", "http://replica-2:8321", "http://replica-2:8321",
		"http://replica-2:8321",
	}
	goldenOwners6 = []string{
		"http://replica-3:8321", "http://replica-1:8321", "http://replica-5:8321",
		"http://replica-5:8321", "http://replica-1:8321", "http://replica-1:8321",
		"http://replica-1:8321", "http://replica-2:8321", "http://replica-2:8321",
		"http://replica-4:8321",
	}
)
