// Package cluster scales the single-replica analysis service into a
// sharded cluster: a consistent-placement ring assigns every
// content-addressed job key to one owning replica, a coordinator
// forwards cache misses to the owner (falling through the preference
// order when a replica is down or over its load bound), and hot cache
// entries are replicated to their new owners on membership change so
// scale-up warms the moved shard instead of stampeding it.
//
// The placement layer uses rendezvous (highest-random-weight) hashing:
// every (member, key) pair gets a pseudo-random weight and the key is
// owned by the member with the highest weight. Rendezvous hashing gives
// the two properties the cluster tests pin down as hard invariants:
//
//   - balance: keys spread evenly across members (each member's share
//     concentrates around 1/n of the keyspace);
//   - minimal remap: removing a member moves exactly the keys it owned
//     (everyone else's maximum is untouched), and adding a member moves
//     only the keys whose new maximum is the new member (an expected
//     1/(n+1) fraction). There is no full reshuffle, ever.
package cluster

import "sort"

// fnv64a constants (FNV-1a, 64 bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// weight derives the rendezvous weight of a (member, key) pair: FNV-1a
// over member‖NUL‖key, finished with a 64-bit avalanche mix (FNV alone
// mixes low bits weakly for short, similar inputs — member names are
// near-identical URLs — and a biased weight would skew the balance
// bound the property tests assert).
func weight(member, key string) uint64 {
	h := fnvString(fnvOffset64, member)
	h ^= 0xff
	h *= fnvPrime64
	h = fnvString(h, key)
	// splitmix64-style finalizer.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Ring is an immutable placement snapshot over a replica set. Methods
// are goroutine-safe; membership changes build a new Ring (the cluster
// swaps rings atomically).
type Ring struct {
	members []string // sorted, deduped
}

// NewRing builds a placement snapshot over the given members (base
// URLs). Members are deduplicated; order is irrelevant — the same set
// always produces the same placements.
func NewRing(members []string) *Ring {
	seen := make(map[string]bool, len(members))
	ms := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		ms = append(ms, m)
	}
	sort.Strings(ms)
	return &Ring{members: ms}
}

// Members returns the member set (sorted; callers must not mutate).
func (r *Ring) Members() []string { return r.members }

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key ("" for an empty ring). Ties on
// the rendezvous weight break to the lexicographically smaller member,
// so ownership is a pure function of (member set, key).
func (r *Ring) Owner(key string) string {
	var best string
	var bestW uint64
	for _, m := range r.members {
		if w := weight(m, key); best == "" || w > bestW {
			best, bestW = m, w
		}
	}
	return best
}

// Order returns every member sorted by descending rendezvous weight for
// key: Order(key)[0] is the owner, and the tail is the deterministic
// fallback sequence a coordinator walks when the owner is down or over
// its load bound. The result is freshly allocated.
func (r *Ring) Order(key string) []string {
	type mw struct {
		m string
		w uint64
	}
	ws := make([]mw, len(r.members))
	for i, m := range r.members {
		ws[i] = mw{m, weight(m, key)}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].w != ws[j].w {
			return ws[i].w > ws[j].w
		}
		return ws[i].m < ws[j].m
	})
	out := make([]string, len(ws))
	for i, e := range ws {
		out[i] = e.m
	}
	return out
}

// OwnerBounded is the bounded-load placement: the first member in
// preference order whose current load (as reported by load) is below
// bound. When every member is at or over the bound — or bound <= 0 —
// the plain owner is returned, so the bound sheds overload sideways but
// never rejects placement outright.
func (r *Ring) OwnerBounded(key string, bound int, load func(member string) int) string {
	if bound <= 0 || len(r.members) == 0 {
		return r.Owner(key)
	}
	order := r.Order(key)
	for _, m := range order {
		if load(m) < bound {
			return m
		}
	}
	return order[0]
}
