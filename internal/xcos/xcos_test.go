package xcos

import (
	"math"
	"strings"
	"testing"

	"argo/internal/ir"
	"argo/internal/scil"
)

// polka2 is a small polarization-ish diagram: smooth -> gradient ->
// threshold, plus a scaled copy.
func testDiagram() *Diagram {
	return &Diagram{
		Name:   "inspect",
		Inputs: []string{"img"},
		Blocks: []Block{
			{Name: "pre", Kind: "smooth3"},
			{Name: "edges", Kind: "gradmag"},
			{Name: "mask", Kind: "threshold", Params: map[string]float64{"t": 10}},
			{Name: "scaled", Kind: "gain", Params: map[string]float64{"k": 0.5}},
		},
		Links: []Link{
			{From: "img", To: "pre", Port: 0},
			{From: "pre", To: "edges", Port: 0},
			{From: "edges", To: "mask", Port: 0},
			{From: "pre", To: "scaled", Port: 0},
		},
		Outputs: []string{"mask", "scaled"},
	}
}

func TestValidateAcceptsGoodDiagram(t *testing.T) {
	if err := testDiagram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadDiagrams(t *testing.T) {
	mk := func(mut func(*Diagram)) *Diagram {
		d := testDiagram()
		mut(d)
		return d
	}
	cases := map[string]*Diagram{
		"unknown kind":     mk(func(d *Diagram) { d.Blocks[0].Kind = "nosuch" }),
		"missing param":    mk(func(d *Diagram) { delete(d.Blocks[2].Params, "t") }),
		"unconnected port": mk(func(d *Diagram) { d.Links = d.Links[:len(d.Links)-1] }),
		"double connect":   mk(func(d *Diagram) { d.Links = append(d.Links, Link{From: "img", To: "pre", Port: 0}) }),
		"unknown output":   mk(func(d *Diagram) { d.Outputs = []string{"ghost"} }),
		"no outputs":       mk(func(d *Diagram) { d.Outputs = nil }),
		"duplicate name":   mk(func(d *Diagram) { d.Blocks[1].Name = "pre"; d.Links[1].To = "pre" }),
		"bad link target":  mk(func(d *Diagram) { d.Links[0].To = "ghost" }),
	}
	for name, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	d := &Diagram{
		Name:   "cyc",
		Inputs: []string{"x"},
		Blocks: []Block{
			{Name: "a", Kind: "sum"},
			{Name: "b", Kind: "gain", Params: map[string]float64{"k": 2}},
		},
		Links: []Link{
			{From: "x", To: "a", Port: 0},
			{From: "b", To: "a", Port: 1},
			{From: "a", To: "b", Port: 0},
		},
		Outputs: []string{"b"},
	}
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestFlattenProducesCheckedProgram(t *testing.T) {
	prog, entry, err := testDiagram().Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if entry != "inspect" {
		t.Fatalf("entry = %q", entry)
	}
	if prog.Func("inspect") == nil || prog.Func("block_smooth3") == nil {
		t.Fatal("missing functions in flattened program")
	}
}

func TestFlattenedDiagramComputes(t *testing.T) {
	prog, entry, err := testDiagram().Flatten()
	if err != nil {
		t.Fatal(err)
	}
	// 8x8 image with a bright square in the middle.
	img := scil.NewMatrix(8, 8)
	for i := 3; i <= 5; i++ {
		for j := 3; j <= 5; j++ {
			img.Set(i, j, 100)
		}
	}
	out, err := scil.NewInterp(prog).Call(entry, img)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("outputs: %d", len(out))
	}
	mask, scaled := out[0], out[1]
	if mask.Rows != 8 || scaled.Rows != 8 {
		t.Fatalf("shapes: %v %v", mask, scaled)
	}
	// The mask must fire somewhere around the square's edge.
	fired := 0.0
	for _, v := range mask.Data {
		fired += v
	}
	if fired == 0 {
		t.Fatal("threshold mask never fired")
	}
	// scaled = smooth * 0.5: max should be about 50.
	maxScaled := 0.0
	for _, v := range scaled.Data {
		maxScaled = math.Max(maxScaled, v)
	}
	if maxScaled <= 10 || maxScaled > 60 {
		t.Fatalf("scaled max = %f", maxScaled)
	}
}

func TestFlattenedDiagramLowers(t *testing.T) {
	prog, entry, err := testDiagram().Flatten()
	if err != nil {
		t.Fatal(err)
	}
	irProg, err := ir.Lower(prog, entry, []ir.ArgSpec{ir.MatrixArg(8, 8)})
	if err != nil {
		t.Fatal(err)
	}
	// IR and scil agree.
	in := make([]float64, 64)
	for i := range in {
		in[i] = float64(i % 13)
	}
	got, err := ir.NewExec(irProg, nil).Run([][]float64{in})
	if err != nil {
		t.Fatal(err)
	}
	sIn := scil.MatrixOf(8, 8, in)
	want, err := scil.NewInterp(prog).Call(entry, sIn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for k := 1; k <= want[i].Len(); k++ {
			w := want[i].Lin(k)
			r := (k - 1) % want[i].Rows
			c := (k - 1) / want[i].Rows
			g := got[i][r*want[i].Cols+c]
			if math.Abs(w-g) > 1e-9 {
				t.Fatalf("output %d elem %d: %g vs %g", i, k, g, w)
			}
		}
	}
}

func TestBlockLibraryComplete(t *testing.T) {
	kinds := BlockKinds()
	if len(kinds) < 12 {
		t.Fatalf("library too small: %v", kinds)
	}
	for _, k := range kinds {
		bt := LookupBlockType(k)
		if bt.Inputs < 1 || bt.Behaviour == "" {
			t.Errorf("block %q malformed", k)
		}
		// Behaviour must parse and check in isolation.
		p, err := scil.Parse(bt.Behaviour)
		if err != nil {
			t.Errorf("block %q behaviour: %v", k, err)
			continue
		}
		f := p.Func("block_" + k)
		if f == nil {
			t.Errorf("block %q: behaviour function misnamed", k)
			continue
		}
		if len(f.Params) != bt.Inputs+len(bt.Params) {
			t.Errorf("block %q: %d params, want %d", k, len(f.Params), bt.Inputs+len(bt.Params))
		}
	}
}

func TestMatMulDiagram(t *testing.T) {
	d := &Diagram{
		Name:   "mm",
		Inputs: []string{"a", "b"},
		Blocks: []Block{{Name: "prod", Kind: "matmul"}},
		Links: []Link{
			{From: "a", To: "prod", Port: 0},
			{From: "b", To: "prod", Port: 1},
		},
		Outputs: []string{"prod"},
	}
	prog, entry, err := d.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	a := scil.MatrixOf(2, 2, []float64{1, 2, 3, 4})
	b := scil.MatrixOf(2, 2, []float64{5, 6, 7, 8})
	out, err := scil.NewInterp(prog).Call(entry, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].At(1, 1) != 19 || out[0].At(2, 2) != 50 {
		t.Fatalf("matmul: %v", out[0].Data)
	}
}

func TestDiagramJSONRoundTrip(t *testing.T) {
	d := testDiagram()
	data, err := EncodeJSON(d)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != d.Name || len(d2.Blocks) != len(d.Blocks) || len(d2.Links) != len(d.Links) {
		t.Fatalf("round trip: %+v", d2)
	}
	// The decoded model must flatten and behave identically.
	p1, _, err := d.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := d2.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	img := scil.NewMatrix(8, 8)
	img.Set(4, 4, 50)
	o1, err1 := scil.NewInterp(p1).Call("inspect", img)
	o2, err2 := scil.NewInterp(p2).Call("inspect", img)
	if err1 != nil || err2 != nil {
		t.Fatalf("%v %v", err1, err2)
	}
	for i := range o1 {
		for k := range o1[i].Data {
			if o1[i].Data[k] != o2[i].Data[k] {
				t.Fatal("behaviour changed through JSON")
			}
		}
	}
}

func TestDecodeJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`not json`,
		`{}`,
		`{"Name":"d","Inputs":["x"],"Blocks":[{"Name":"g","Kind":"nosuch"}],"Outputs":["g"]}`,
	}
	for _, c := range cases {
		if _, err := DecodeJSON([]byte(c)); err == nil {
			t.Errorf("DecodeJSON(%q) should fail", c)
		}
	}
}
