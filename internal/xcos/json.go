package xcos

import (
	"encoding/json"
	"fmt"
)

// EncodeJSON serializes a diagram to the on-disk model format (the
// open-diagram exchange format of this tool-chain, standing in for Xcos'
// XML model files).
func EncodeJSON(d *Diagram) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(d, "", "  ")
}

// DecodeJSON parses and validates a diagram model file.
func DecodeJSON(data []byte) (*Diagram, error) {
	var d Diagram
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("xcos: %v", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
