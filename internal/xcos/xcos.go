// Package xcos implements ARGO's model-based design front-end (paper
// §II-A): a dataflow block-diagram model in the spirit of the open-source
// Xcos framework. The behaviour of every block in the library is itself
// described in the scil language, so a diagram both *is* a model and
// *has* a complete high-level functional specification — the extensible
// dual view the paper describes.
//
// Flatten compiles a diagram into a single scil program: one function per
// block behaviour plus a generated top-level entry that wires the blocks
// in topological order. The result feeds directly into the rest of the
// tool-chain (ir.Lower and onward).
package xcos

import (
	"fmt"
	"sort"
	"strings"

	"argo/internal/scil"
)

// BlockType describes one library block kind.
type BlockType struct {
	Kind string
	// Inputs is the number of signal input ports.
	Inputs int
	// Params names the scalar parameters appended to the behaviour call.
	Params []string
	// Behaviour is the scil source of the block's behaviour function,
	// named block_<kind>, taking the input signals then the parameters,
	// returning one signal.
	Behaviour string
}

// library is the built-in block set.
var library = map[string]*BlockType{}

func registerBlock(bt *BlockType) {
	if _, dup := library[bt.Kind]; dup {
		panic("xcos: duplicate block kind " + bt.Kind)
	}
	library[bt.Kind] = bt
}

func init() {
	registerBlock(&BlockType{Kind: "gain", Inputs: 1, Params: []string{"k"}, Behaviour: `
function y = block_gain(u, k)
  y = u .* k
endfunction`})
	registerBlock(&BlockType{Kind: "offset", Inputs: 1, Params: []string{"c"}, Behaviour: `
function y = block_offset(u, c)
  y = u + c
endfunction`})
	registerBlock(&BlockType{Kind: "sum", Inputs: 2, Behaviour: `
function y = block_sum(a, b)
  y = a + b
endfunction`})
	registerBlock(&BlockType{Kind: "sub", Inputs: 2, Behaviour: `
function y = block_sub(a, b)
  y = a - b
endfunction`})
	registerBlock(&BlockType{Kind: "mul", Inputs: 2, Behaviour: `
function y = block_mul(a, b)
  y = a .* b
endfunction`})
	registerBlock(&BlockType{Kind: "matmul", Inputs: 2, Behaviour: `
function y = block_matmul(a, b)
  y = a * b
endfunction`})
	registerBlock(&BlockType{Kind: "abs", Inputs: 1, Behaviour: `
function y = block_abs(u)
  y = abs(u)
endfunction`})
	registerBlock(&BlockType{Kind: "sqrt", Inputs: 1, Behaviour: `
function y = block_sqrt(u)
  y = sqrt(abs(u))
endfunction`})
	registerBlock(&BlockType{Kind: "square", Inputs: 1, Behaviour: `
function y = block_square(u)
  y = u .* u
endfunction`})
	registerBlock(&BlockType{Kind: "threshold", Inputs: 1, Params: []string{"t"}, Behaviour: `
function y = block_threshold(u, t)
  y = u > t
endfunction`})
	registerBlock(&BlockType{Kind: "saturate", Inputs: 1, Params: []string{"lo", "hi"}, Behaviour: `
function y = block_saturate(u, lo, hi)
  y = min(max(u, lo), hi)
endfunction`})
	registerBlock(&BlockType{Kind: "smooth3", Inputs: 1, Behaviour: `
function y = block_smooth3(u)
  h = size(u, 1)
  w = size(u, 2)
  y = zeros(h, w)
  for i = 1:h
    for j = 1:w
      acc = 0
      cnt = 0
      for di = -1:1
        for dj = -1:1
          ii = i + di
          jj = j + dj
          if ii >= 1 & ii <= h & jj >= 1 & jj <= w then
            acc = acc + u(ii, jj)
            cnt = cnt + 1
          end
        end
      end
      y(i, j) = acc / cnt
    end
  end
endfunction`})
	registerBlock(&BlockType{Kind: "gradmag", Inputs: 1, Behaviour: `
function y = block_gradmag(u)
  h = size(u, 1)
  w = size(u, 2)
  y = zeros(h, w)
  for i = 2:h-1
    for j = 2:w-1
      gx = u(i, j + 1) - u(i, j - 1)
      gy = u(i + 1, j) - u(i - 1, j)
      y(i, j) = sqrt(gx * gx + gy * gy)
    end
  end
endfunction`})
	registerBlock(&BlockType{Kind: "meanpool2", Inputs: 1, Behaviour: `
function y = block_meanpool2(u)
  h = size(u, 1) / 2
  w = size(u, 2) / 2
  y = zeros(h, w)
  for i = 1:h
    for j = 1:w
      y(i, j) = (u(2 * i - 1, 2 * j - 1) + u(2 * i - 1, 2 * j) + u(2 * i, 2 * j - 1) + u(2 * i, 2 * j)) / 4
    end
  end
endfunction`})
	registerBlock(&BlockType{Kind: "sumall", Inputs: 1, Behaviour: `
function y = block_sumall(u)
  y = sum(u)
endfunction`})
	registerBlock(&BlockType{Kind: "maxall", Inputs: 1, Behaviour: `
function y = block_maxall(u)
  y = maxval(u)
endfunction`})
	registerBlock(&BlockType{Kind: "hypot", Inputs: 2, Behaviour: `
function y = block_hypot(a, b)
  y = sqrt(a .* a + b .* b)
endfunction`})
}

// LookupBlockType returns a library block kind, or nil.
func LookupBlockType(kind string) *BlockType { return library[kind] }

// BlockKinds lists the library block kinds, sorted.
func BlockKinds() []string {
	out := make([]string, 0, len(library))
	for k := range library {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Block is one block instance in a diagram.
type Block struct {
	Name   string
	Kind   string
	Params map[string]float64
}

// Link connects a producer to one input port of a consumer. Producers
// are block names or diagram input names.
type Link struct {
	From string
	To   string
	// Port is the consumer's input port index (0-based).
	Port int
}

// Diagram is a dataflow model.
type Diagram struct {
	Name string
	// Inputs are the external input signal names, in order.
	Inputs []string
	Blocks []Block
	Links  []Link
	// Outputs are the block names whose signals are the diagram outputs,
	// in order.
	Outputs []string
}

// Validate checks structural consistency: known kinds, unique names,
// fully connected ports, no cycles, outputs exist.
func (d *Diagram) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("xcos: diagram has no name")
	}
	names := map[string]bool{}
	for _, in := range d.Inputs {
		if names[in] {
			return fmt.Errorf("xcos: duplicate name %q", in)
		}
		names[in] = true
	}
	blockByName := map[string]*Block{}
	for i := range d.Blocks {
		b := &d.Blocks[i]
		if names[b.Name] {
			return fmt.Errorf("xcos: duplicate name %q", b.Name)
		}
		names[b.Name] = true
		bt := LookupBlockType(b.Kind)
		if bt == nil {
			return fmt.Errorf("xcos: block %q has unknown kind %q", b.Name, b.Kind)
		}
		for _, p := range bt.Params {
			if _, ok := b.Params[p]; !ok {
				return fmt.Errorf("xcos: block %q missing parameter %q", b.Name, p)
			}
		}
		blockByName[b.Name] = b
	}
	// Port connectivity.
	conn := map[string][]string{} // block -> producer per port
	for _, b := range d.Blocks {
		conn[b.Name] = make([]string, LookupBlockType(b.Kind).Inputs)
	}
	for _, l := range d.Links {
		if !names[l.From] {
			return fmt.Errorf("xcos: link from unknown signal %q", l.From)
		}
		tgt, ok := conn[l.To]
		if !ok {
			return fmt.Errorf("xcos: link to unknown block %q", l.To)
		}
		if l.Port < 0 || l.Port >= len(tgt) {
			return fmt.Errorf("xcos: block %q has no input port %d", l.To, l.Port)
		}
		if tgt[l.Port] != "" {
			return fmt.Errorf("xcos: block %q port %d connected twice", l.To, l.Port)
		}
		tgt[l.Port] = l.From
	}
	for name, ports := range conn {
		for i, p := range ports {
			if p == "" {
				return fmt.Errorf("xcos: block %q input port %d unconnected", name, i)
			}
		}
	}
	for _, out := range d.Outputs {
		if _, ok := blockByName[out]; !ok {
			return fmt.Errorf("xcos: output %q is not a block", out)
		}
	}
	if len(d.Outputs) == 0 {
		return fmt.Errorf("xcos: diagram has no outputs")
	}
	if _, err := d.topoOrder(); err != nil {
		return err
	}
	return nil
}

// topoOrder returns block names in dataflow order.
func (d *Diagram) topoOrder() ([]string, error) {
	producers := map[string][]string{}
	for _, b := range d.Blocks {
		producers[b.Name] = nil
	}
	for _, l := range d.Links {
		if _, isBlock := producers[l.From]; isBlock || containsStr(d.Inputs, l.From) {
			producers[l.To] = append(producers[l.To], l.From)
		}
	}
	state := map[string]int{}
	var order []string
	var visit func(n string) error
	visit = func(n string) error {
		if containsStr(d.Inputs, n) {
			return nil
		}
		switch state[n] {
		case 1:
			return fmt.Errorf("xcos: cycle through block %q (dataflow diagrams must be acyclic)", n)
		case 2:
			return nil
		}
		state[n] = 1
		deps := append([]string{}, producers[n]...)
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[n] = 2
		order = append(order, n)
		return nil
	}
	var blockNames []string
	for _, b := range d.Blocks {
		blockNames = append(blockNames, b.Name)
	}
	for _, n := range blockNames {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Flatten compiles the diagram to a scil program whose entry function is
// named after the diagram.
func (d *Diagram) Flatten() (*scil.Program, string, error) {
	if err := d.Validate(); err != nil {
		return nil, "", err
	}
	var sb strings.Builder
	kinds := map[string]bool{}
	for _, b := range d.Blocks {
		kinds[b.Kind] = true
	}
	var kindList []string
	for k := range kinds {
		kindList = append(kindList, k)
	}
	sort.Strings(kindList)
	for _, k := range kindList {
		sb.WriteString(strings.TrimSpace(library[k].Behaviour))
		sb.WriteString("\n\n")
	}
	// Entry function.
	order, err := d.topoOrder()
	if err != nil {
		return nil, "", err
	}
	blockByName := map[string]Block{}
	for _, b := range d.Blocks {
		blockByName[b.Name] = b
	}
	conn := map[string][]string{}
	for _, b := range d.Blocks {
		conn[b.Name] = make([]string, LookupBlockType(b.Kind).Inputs)
	}
	for _, l := range d.Links {
		conn[l.To][l.Port] = l.From
	}
	outs := make([]string, len(d.Outputs))
	for i, o := range d.Outputs {
		outs[i] = "out_" + o
	}
	fmt.Fprintf(&sb, "function [%s] = %s(%s)\n", strings.Join(outs, ", "), d.Name, strings.Join(d.Inputs, ", "))
	sigName := func(producer string) string {
		if containsStr(d.Inputs, producer) {
			return producer
		}
		return "sig_" + producer
	}
	for _, name := range order {
		b := blockByName[name]
		bt := LookupBlockType(b.Kind)
		args := make([]string, 0, bt.Inputs+len(bt.Params))
		for _, p := range conn[name] {
			args = append(args, sigName(p))
		}
		for _, pname := range bt.Params {
			args = append(args, fmt.Sprintf("%g", b.Params[pname]))
		}
		fmt.Fprintf(&sb, "  sig_%s = block_%s(%s)\n", name, b.Kind, strings.Join(args, ", "))
	}
	for i, o := range d.Outputs {
		fmt.Fprintf(&sb, "  %s = sig_%s\n", outs[i], o)
	}
	sb.WriteString("endfunction\n")
	prog, err := scil.Parse(sb.String())
	if err != nil {
		return nil, "", fmt.Errorf("xcos: generated source failed to parse: %v\n%s", err, sb.String())
	}
	if errs := scil.Check(prog, scil.CheckWCET); len(errs) > 0 {
		return nil, "", fmt.Errorf("xcos: generated source failed checks: %v", errs[0])
	}
	return prog, d.Name, nil
}
