package sim

import (
	"reflect"
	"testing"

	"argo/internal/adl"
	"argo/internal/ir"
	"argo/internal/sched"
	"argo/internal/wcet"
)

// TestTraceCacheWarmRunsIdentical runs the same inputs through a warm
// program (trace cache populated by earlier seeds) and through per-seed
// fresh programs (every run meters cold), and requires bit-identical
// reports: the cache must be invisible in every observable output.
func TestTraceCacheWarmRunsIdentical(t *testing.T) {
	platform := adl.XentiumPlatform(3)
	spec := ir.ArgSpec{Rows: 8, Cols: 8}
	warm := buildPipeline(t, pipelineSrc, platform, sched.ListOblivious, false, spec)
	for seed := int64(0); seed < 5; seed++ {
		args := [][]float64{randImg(64, seed)}
		wantProg := buildPipeline(t, pipelineSrc, platform, sched.ListOblivious, false, spec)
		want, err := Run(wantProg, args)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(warm, args)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: warm-cache report differs from cold report:\n got: %+v\nwant: %+v", seed, got, want)
		}
	}
}

// TestTraceCacheInvariance checks the gate itself: the straight-line
// pipeline caches every task, while the branchy kernel (data-dependent
// if) caches none — and cached traces equal freshly metered ones.
func TestTraceCacheInvariance(t *testing.T) {
	platform := adl.XentiumPlatform(3)
	spec := ir.ArgSpec{Rows: 8, Cols: 8}

	p := buildPipeline(t, pipelineSrc, platform, sched.ListOblivious, false, spec)
	c := cacheFor(p)
	for tid, inv := range c.invariant {
		if !inv {
			t.Errorf("pipeline task %d: want invariant trace", tid)
		}
	}

	b := buildPipeline(t, branchySrc, platform, sched.ListOblivious, false, spec)
	cb := cacheFor(b)
	anyVariant := false
	for _, inv := range cb.invariant {
		if !inv {
			anyVariant = true
		}
	}
	if !anyVariant {
		t.Error("branchy program: want at least one variant task")
	}

	// Populate the cache, then independently re-meter every invariant
	// task and compare segment for segment.
	if _, err := Run(p, [][]float64{randImg(64, 1)}); err != nil {
		t.Fatal(err)
	}
	ex := ir.NewExec(p.IR, nil)
	if err := ex.Init([][]float64{randImg(64, 2)}); err != nil {
		t.Fatal(err)
	}
	for _, n := range p.Graph.Nodes {
		tm := &traceMeter{model: wcet.ModelFor(p.Platform, p.Schedule.Placements[n.ID].Core)}
		ex.SetMeter(tm)
		if err := ex.ExecBlock(n.Stmts); err != nil {
			t.Fatal(err)
		}
		fresh := tm.finish()
		if cached := c.traces[n.ID]; cached != nil && !reflect.DeepEqual(cached, fresh) {
			t.Errorf("task %d: cached trace differs from fresh metering\n cached: %v\n  fresh: %v", n.ID, cached, fresh)
		}
	}

	// Counter sanity: a second warm run of the pipeline only hits.
	h0, m0 := TraceCacheCounters()
	if _, err := Run(p, [][]float64{randImg(64, 3)}); err != nil {
		t.Fatal(err)
	}
	h1, m1 := TraceCacheCounters()
	if h1 <= h0 {
		t.Errorf("warm run recorded no trace cache hits (%d -> %d)", h0, h1)
	}
	if m1 != m0 {
		t.Errorf("warm run of fully-invariant program recorded misses (%d -> %d)", m0, m1)
	}
}
