// Package sim is the ARGO multi-core platform simulator: a
// discrete-event, trace-driven simulator that executes an explicitly
// parallel program (internal/par) on an ADL platform model with
// scratchpads, a shared-memory interconnect with round-robin/TDM/NoC-port
// arbitration, time-triggered task release, signal/wait synchronization,
// and serialized DMA staging phases.
//
// It substitutes for the project's FPGA-prototyped Xentium and Leon3/iNoC
// platforms (see DESIGN.md): the machine model is exactly the one the
// static analyses assume, so simulated behaviour is directly comparable
// to the WCET bounds — measured makespan must never exceed the bound,
// which experiment E2 quantifies as tightness.
package sim

import (
	"context"
	"fmt"
	"math"

	"argo/internal/adl"
	"argo/internal/fault"
	"argo/internal/ir"
	"argo/internal/ir/vm"
	"argo/internal/par"
	"argo/internal/wcet"
)

// segment is one step of a task's isolated execution trace: compute for
// Gap cycles, then (unless last) one shared-memory access.
type segment struct {
	Gap    int64
	Access bool
}

// traceMeter builds a task's segment trace during functional execution.
type traceMeter struct {
	model wcet.CostModel
	gap   int64
	segs  []segment
}

func (tm *traceMeter) Ops(n int) { tm.gap += int64(n) * int64(tm.model.OpCycles) }

func (tm *traceMeter) touch(v *ir.Var) {
	if v.Storage == ir.StorageSPM {
		tm.gap += int64(tm.model.SPMLatency)
		return
	}
	tm.segs = append(tm.segs, segment{Gap: tm.gap, Access: true})
	tm.gap = 0
}

func (tm *traceMeter) Read(v *ir.Var)  { tm.touch(v) }
func (tm *traceMeter) Write(v *ir.Var) { tm.touch(v) }

func (tm *traceMeter) finish() []segment {
	segs := append(tm.segs, segment{Gap: tm.gap})
	tm.segs = nil
	tm.gap = 0
	return segs
}

// coreState is one core's cursor through its static program during the
// discrete-event loop (pooled in runState).
type coreState struct {
	time    int64
	entries []par.Entry
	idx     int
	segs    []segment
	segIdx  int
	inTask  int // task id when executing segments, else -1
	// pendingAccess marks that the core has issued a bus request at
	// its current time; serving it is a separate event so the global
	// min-time order equals the bus request order.
	pendingAccess bool
}

// arbiter models the shared-memory interconnect's arbitration.
type arbiter interface {
	// access serves one access requested by core at reqTime and returns
	// its completion time plus the arbitration wait it suffered.
	access(core int, reqTime int64) (done, wait int64)
}

// rrBus is a round-robin (FIFO under conservative event order) bus.
type rrBus struct {
	platform *adl.Platform
	free     int64
	waits    *int64
}

func (b *rrBus) access(core int, reqTime int64) (int64, int64) {
	grant := reqTime
	if b.free > grant {
		grant = b.free
	}
	*b.waits += grant - reqTime
	b.free = grant + int64(b.platform.Bus.SlotCycles)
	return grant + int64(b.platform.SharedAccessIsolated(core)), grant - reqTime
}

// tdmBus grants each core only its own periodic slot.
type tdmBus struct {
	platform *adl.Platform
	waits    *int64
}

func (b *tdmBus) access(core int, reqTime int64) (int64, int64) {
	slot := int64(b.platform.Bus.SlotCycles)
	k := int64(b.platform.NumCores())
	period := slot * k
	// Next time >= reqTime with (t/slot) mod k == core.
	base := (reqTime / period) * period
	grant := base + int64(core)*slot
	for grant < reqTime {
		grant += period
	}
	*b.waits += grant - reqTime
	return grant + int64(b.platform.SharedAccessIsolated(core)), grant - reqTime
}

// nocPort models the shared-memory controller port of the mesh: WRR
// service quantum per contender, like a bus with a WRR-weight slot.
type nocPort struct {
	platform *adl.Platform
	free     int64
	waits    *int64
}

func (b *nocPort) access(core int, reqTime int64) (int64, int64) {
	grant := reqTime
	if b.free > grant {
		grant = b.free
	}
	*b.waits += grant - reqTime
	b.free = grant + int64(b.platform.NoC.WRRWeight*b.platform.NoC.LinkCycles)
	return grant + int64(b.platform.SharedAccessIsolated(core)), grant - reqTime
}

// Report is the outcome of one simulation run.
type Report struct {
	// Results are the program's outputs (same shape as ir.Exec.Run).
	Results [][]float64
	// Makespan is the total simulated time including DMA phases.
	Makespan int64
	// ExecSpan is the task-phase span (comparable to syswcet.Makespan).
	ExecSpan int64
	// TaskStart / TaskFinish are actual per-task times (task phase,
	// relative to the end of the DMA prologue).
	TaskStart, TaskFinish []int64
	// BusWaitCycles accumulates arbitration waiting.
	BusWaitCycles int64
	// PrologueCycles / EpilogueCycles are the simulated DMA phases.
	PrologueCycles, EpilogueCycles int64
	// Faults reports what a fault-injected run actually injected (the
	// zero value for uninjected runs).
	Faults fault.Stats
}

// Run simulates the parallel program on the given inputs.
//
// Run is reentrant: p is read-only during simulation (all mutable state
// lives in the interpreter instance and local event-loop structures), so
// one compiled program may be simulated from many goroutines at once.
func Run(p *par.Program, args [][]float64) (*Report, error) {
	return RunContext(context.Background(), p, args)
}

// RunContext is Run with cancellation: ctx is checked between functional
// task executions and periodically inside the discrete-event loop, so a
// cancelled or expired context aborts the simulation and returns
// ctx.Err().
func RunContext(ctx context.Context, p *par.Program, args [][]float64) (*Report, error) {
	return run(ctx, p, args, nil, InterpAuto)
}

// RunFaulty simulates the parallel program under deterministic fault
// injection (see internal/fault): shared-memory access-latency jitter
// within each access's modeled interference budget, and task execution
// inflation within (or, in the negative-test mode, beyond) the per-task
// WCET bound. A zero spec is bit-identical to RunContext.
func RunFaulty(ctx context.Context, p *par.Program, args [][]float64, spec fault.Spec) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return run(ctx, p, args, fault.New(spec), InterpAuto)
}

func run(ctx context.Context, p *par.Program, args [][]float64, inj *fault.Injector, interp Interp) (*Report, error) {
	nTasks := len(p.Input.Tasks)
	rep := &Report{
		TaskStart:  make([]int64, nTasks),
		TaskFinish: make([]int64, nTasks),
	}

	// Phase 0: functional execution in dependence (program) order to
	// compute results and extract each task's isolated trace. Tasks with
	// an input-invariant trace replay the program's cached trace and run
	// un-metered (the fast interpreter path); the rest are re-metered.
	//
	// The execution engine is the compiled bytecode VM by default, with
	// the tree walker as the oracle/escape hatch — both produce the same
	// traces, results, and errors, so the trace cache is shared between
	// modes.
	cache := cacheFor(p)
	var cp *vm.Program
	if interp.resolve() == InterpVM {
		cp = cache.vmProgram(p)
	}

	rs := runPool.Get().(*runState)
	defer runPool.Put(rs)
	rs.prepare(p, cp)

	traces := rs.traces
	// Trace-variant tasks are re-executed and re-metered per run —
	// unless this exact input set ran before in VM mode. Execution is
	// deterministic in the entry inputs, so a memo hit supplies both the
	// variant traces and the results; with the invariant traces coming
	// from the trace cache, the whole phase needs no execution at all.
	var memoTraces [][]segment
	var memoResults [][]float64
	var memoKey uint64
	if cp != nil {
		memoTraces, memoResults, memoKey = cache.lookupVariant(args)
	}
	if memoResults != nil {
		for _, n := range p.Graph.Nodes {
			tr := memoTraces[n.ID]
			if tr == nil {
				tr = cache.lookup(n.ID)
			}
			if tr == nil {
				// An invariant trace not yet published (only possible
				// under unusual interleavings): execute normally.
				memoResults = nil
				break
			}
			traces[n.ID] = tr
		}
	}
	if memoResults != nil {
		rep.Results = cloneResults(memoResults)
	} else {
		var initErr error
		if cp != nil {
			initErr = rs.vm.Init(args)
		} else {
			initErr = rs.ex.Init(args)
		}
		if initErr != nil {
			return nil, initErr
		}
		var tm traceMeter
		for _, n := range p.Graph.Nodes {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var meter ir.Meter
			tr := cache.lookup(n.ID)
			if tr == nil && memoTraces != nil {
				tr = memoTraces[n.ID]
			}
			if tr == nil {
				core := p.Schedule.Placements[n.ID].Core
				tm.model = wcet.ModelFor(p.Platform, core)
				meter = &tm
			}
			var err error
			if cp != nil {
				rs.vm.SetMeter(meter)
				err = rs.vm.ExecRegion(n.ID)
			} else {
				rs.ex.SetMeter(meter)
				err = rs.ex.ExecBlock(n.Stmts)
			}
			if err != nil {
				return nil, fmt.Errorf("sim: task %d: %v", n.ID, err)
			}
			if tr == nil {
				tr = tm.finish()
				cache.store(n.ID, tr)
			}
			traces[n.ID] = tr
		}
		if cp != nil {
			rs.vm.SetMeter(nil)
			rep.Results = rs.vm.Results()
		} else {
			rs.ex.SetMeter(nil)
			rep.Results = rs.ex.Results()
		}
		if cp != nil && memoTraces == nil {
			cache.storeVariant(memoKey, args, traces, rep.Results)
		}
	}

	// Fault injection: inflate task compute time within the code-level
	// WCET headroom (or beyond the per-task bound in the negative-test
	// mode). Cached traces are shared across runs, so inflation always
	// works on a private copy; the extra cycles land in the final compute
	// segment, leaving the access pattern untouched.
	var perAccessBudget []int64
	var accessIdx []int
	if inj != nil {
		if inj.Spec().ExecInflation > 0 {
			for t := 0; t < nTasks; t++ {
				core := p.Schedule.Placements[t].Core
				isolatedAccess := int64(p.Platform.SharedAccessIsolated(core))
				segs := traces[t]
				isolated := int64(len(segs)-1) * isolatedAccess
				for _, s := range segs {
					isolated += s.Gap
				}
				extra := inj.ExecExtra(t, isolated, p.Input.Tasks[t].WCET[core], p.System.TaskBound[t])
				if extra <= 0 {
					continue
				}
				inflated := make([]segment, len(segs))
				copy(inflated, segs)
				inflated[len(inflated)-1].Gap += extra
				traces[t] = inflated
			}
		}
		// Per-access jitter budget: the analysis allows every shared
		// access of task t an interference delay for its contender count;
		// injection may consume whatever the arbitration wait left over.
		perAccessBudget = make([]int64, nTasks)
		for t := range perAccessBudget {
			perAccessBudget[t] = int64(p.Platform.AccessInterferenceDelay(p.System.Contenders[t]))
		}
		accessIdx = make([]int, nTasks)
	}

	// Phase 1: DMA prologue (serialized on the shared DMA engine).
	var dmaTime int64
	for _, op := range p.DMAIns {
		dmaTime += int64(p.Platform.DMACycles(op.Core, op.Bytes))
	}
	rep.PrologueCycles = dmaTime

	// Phase 2: conservative discrete-event execution of the core
	// programs (times relative to the end of the prologue).
	var busWaits int64
	var arb arbiter
	switch {
	case p.Platform.Bus != nil && p.Platform.Bus.Arbitration == adl.ArbTDM:
		arb = &tdmBus{platform: p.Platform, waits: &busWaits}
	case p.Platform.Bus != nil:
		arb = &rrBus{platform: p.Platform, waits: &busWaits}
	default:
		arb = &nocPort{platform: p.Platform, waits: &busWaits}
	}
	cores := rs.cores
	for c := range cores {
		cores[c] = coreState{entries: p.CoreEntries[c], inTask: -1}
	}
	signalTime := rs.signalTime
	posted := rs.posted
	events := 0
	for {
		// Pick the runnable core with minimal time (conservative DES),
		// and remember the runner-up's time: the chosen core can then
		// step repeatedly without a rescan while it stays strictly below
		// every other eligible core (no other core could have been
		// picked, and blocked cores only wake on a signal post, which
		// forces a rescan below).
		best := -1
		bestTime := int64(math.MaxInt64)
		second := int64(math.MaxInt64)
		for c := range cores {
			cs := &cores[c]
			if cs.idx >= len(cs.entries) && cs.inTask < 0 {
				continue
			}
			if cs.inTask < 0 && cs.entries[cs.idx].Kind == par.EntryWait {
				if !posted[cs.entries[cs.idx].Sig] {
					continue // blocked
				}
			}
			if cs.time < bestTime {
				second = bestTime
				best = c
				bestTime = cs.time
			} else if cs.time < second {
				second = cs.time
			}
		}
		if best < 0 {
			// All done or deadlock.
			done := true
			for c := range cores {
				if cores[c].idx < len(cores[c].entries) || cores[c].inTask >= 0 {
					done = false
				}
			}
			if !done {
				return nil, fmt.Errorf("sim: deadlock (waiting on never-posted signal)")
			}
			break
		}
		// Step the chosen core until its time reaches the runner-up's
		// (another core could then hold the minimum, or tie with a lower
		// index), it blocks or finishes, or it posts a signal (which may
		// wake a core whose time is below ours). Every exit rescans, so
		// the step order is identical to a scan per event.
		cs := &cores[best]
	step:
		for {
			events++
			if events%4096 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if cs.inTask >= 0 {
				if cs.pendingAccess {
					// Serve the previously issued bus request.
					done, wait := arb.access(best, cs.time)
					if inj != nil {
						// Jitter the access within its remaining modeled
						// interference budget. Only this core's completion
						// moves — arbiter state is untouched — so other cores
						// never see interference beyond the model.
						t := cs.inTask
						done += inj.AccessDelay(t, accessIdx[t], perAccessBudget[t]-wait)
						accessIdx[t]++
					}
					cs.time = done
					cs.pendingAccess = false
					cs.segIdx++
					if cs.segIdx == len(cs.segs) {
						rep.TaskFinish[cs.inTask] = cs.time
						cs.inTask = -1
					}
				} else {
					// Execute one compute segment; a trailing access
					// becomes a pending request at the segment's end time.
					seg := cs.segs[cs.segIdx]
					cs.time += seg.Gap
					if seg.Access {
						cs.pendingAccess = true
					} else {
						cs.segIdx++
						if cs.segIdx == len(cs.segs) {
							rep.TaskFinish[cs.inTask] = cs.time
							cs.inTask = -1
						}
					}
				}
			} else if cs.idx >= len(cs.entries) {
				break step // finished
			} else {
				e := cs.entries[cs.idx]
				switch e.Kind {
				case par.EntryWait:
					if !posted[e.Sig] {
						break step // blocked until another core posts
					}
					if t := signalTime[e.Sig]; t > cs.time {
						cs.time = t
					}
					cs.idx++
				case par.EntrySignal:
					posted[e.Sig] = true
					if cs.time > signalTime[e.Sig] {
						signalTime[e.Sig] = cs.time
					}
					cs.idx++
					break step // may wake an earlier-time core
				case par.EntryCompute:
					if e.Release > cs.time {
						cs.time = e.Release // time-triggered release
					}
					rep.TaskStart[e.Task] = cs.time
					cs.inTask = e.Task
					cs.segs = traces[e.Task]
					cs.segIdx = 0
					cs.idx++
				}
			}
			if cs.time >= second {
				break
			}
		}
	}
	for c := range cores {
		if cores[c].time > rep.ExecSpan {
			rep.ExecSpan = cores[c].time
		}
	}
	rep.BusWaitCycles = busWaits

	// Phase 3: DMA epilogue.
	var epi int64
	for _, op := range p.DMAOuts {
		epi += int64(p.Platform.DMACycles(op.Core, op.Bytes))
	}
	rep.EpilogueCycles = epi
	rep.Makespan = rep.PrologueCycles + rep.ExecSpan + rep.EpilogueCycles
	if inj != nil {
		rep.Faults = inj.Stats()
	}
	return rep, nil
}

// Violations returns every breach of the analytic bounds in a run as a
// structured report (empty when the run is sound). CheckAgainstBounds is
// the error-valued form that stops at the first breach; this one is what
// fault-injection experiments use so over-bound injection is reported in
// full rather than silently absorbed.
func Violations(p *par.Program, rep *Report) []fault.Violation {
	var out []fault.Violation
	for t := range p.Input.Tasks {
		if rep.TaskStart[t] < p.System.Start[t] {
			out = append(out, fault.Violation{Kind: "task-start", Task: t,
				Observed: rep.TaskStart[t], Bound: p.System.Start[t]})
		}
		if rep.TaskFinish[t] > p.System.Finish[t] {
			out = append(out, fault.Violation{Kind: "task-finish", Task: t,
				Observed: rep.TaskFinish[t], Bound: p.System.Finish[t]})
		}
	}
	if rep.ExecSpan > p.System.Makespan {
		out = append(out, fault.Violation{Kind: "exec-span", Task: -1,
			Observed: rep.ExecSpan, Bound: p.System.Makespan})
	}
	if rep.Makespan > p.BoundMakespan() {
		out = append(out, fault.Violation{Kind: "makespan", Task: -1,
			Observed: rep.Makespan, Bound: p.BoundMakespan()})
	}
	return out
}

// CheckAgainstBounds verifies the soundness contract: every task ran
// within its analyzed window and the measured spans are below the bounds.
func CheckAgainstBounds(p *par.Program, rep *Report) error {
	for t := range p.Input.Tasks {
		if rep.TaskStart[t] < p.System.Start[t] {
			return fmt.Errorf("sim: task %d started at %d before release %d", t, rep.TaskStart[t], p.System.Start[t])
		}
		if rep.TaskFinish[t] > p.System.Finish[t] {
			return fmt.Errorf("sim: task %d finished at %d after bound %d", t, rep.TaskFinish[t], p.System.Finish[t])
		}
	}
	if rep.ExecSpan > p.System.Makespan {
		return fmt.Errorf("sim: exec span %d exceeds system bound %d", rep.ExecSpan, p.System.Makespan)
	}
	if rep.Makespan > p.BoundMakespan() {
		return fmt.Errorf("sim: makespan %d exceeds total bound %d", rep.Makespan, p.BoundMakespan())
	}
	return nil
}

// PeriodicReport summarizes a back-to-back frame stream execution.
type PeriodicReport struct {
	Frames    int
	Period    int64
	Makespans []int64
	// Overruns counts frames whose makespan exceeded the period (a
	// deadline miss in a frame-based deployment).
	Overruns   int
	WorstFrame int64
}

// RunPeriodic executes `frames` activations of the parallel program, one
// per period, with per-frame inputs from inputsFor. Since the program is
// time-triggered and stateless across activations, frames are
// independent; the report captures the deadline behaviour of the stream
// (the deployment model of internal/rt).
func RunPeriodic(p *par.Program, period int64, frames int, inputsFor func(frame int) [][]float64) (*PeriodicReport, error) {
	rep := &PeriodicReport{Frames: frames, Period: period}
	for f := 0; f < frames; f++ {
		r, err := Run(p, inputsFor(f))
		if err != nil {
			return nil, fmt.Errorf("sim: frame %d: %v", f, err)
		}
		if err := CheckAgainstBounds(p, r); err != nil {
			return nil, fmt.Errorf("sim: frame %d: %v", f, err)
		}
		rep.Makespans = append(rep.Makespans, r.Makespan)
		if r.Makespan > rep.WorstFrame {
			rep.WorstFrame = r.Makespan
		}
		if r.Makespan > period {
			rep.Overruns++
		}
	}
	return rep, nil
}
