package sim

import (
	"context"
	"fmt"
	"sync/atomic"

	"argo/internal/fault"
	"argo/internal/par"
)

// Interp selects the execution engine for the simulator's functional
// phase (phase 0). Both engines are observably identical — results,
// traces, meter charges, and errors are bit-for-bit the same (enforced
// by the differential tests and FuzzVMExec) — so the choice only affects
// speed; it is deliberately excluded from result-cache keys.
type Interp int

const (
	// InterpAuto defers to the package default (SetInterp; the bytecode
	// VM unless overridden).
	InterpAuto Interp = iota
	// InterpVM executes compiled register bytecode (internal/ir/vm),
	// falling back to the tree walker if compilation fails.
	InterpVM
	// InterpTree executes the ir.Exec tree walker — the differential
	// oracle and the -interp=tree escape hatch.
	InterpTree
)

// String returns the flag spelling of the mode.
func (i Interp) String() string {
	switch i {
	case InterpVM:
		return "vm"
	case InterpTree:
		return "tree"
	}
	return "auto"
}

// ParseInterp parses a -interp flag value ("vm" or "tree").
func ParseInterp(s string) (Interp, error) {
	switch s {
	case "vm":
		return InterpVM, nil
	case "tree":
		return InterpTree, nil
	case "auto", "":
		return InterpAuto, nil
	}
	return InterpAuto, fmt.Errorf("sim: unknown interpreter %q (want vm or tree)", s)
}

// defaultInterp is the process-wide engine used when a run passes
// InterpAuto; the zero value means InterpVM.
var defaultInterp atomic.Int32

// SetInterp sets the process-wide default execution engine (what
// InterpAuto resolves to). Passing InterpAuto restores the built-in
// default (the VM).
func SetInterp(i Interp) { defaultInterp.Store(int32(i)) }

// DefaultInterp reports what InterpAuto currently resolves to.
func DefaultInterp() Interp {
	if d := Interp(defaultInterp.Load()); d == InterpVM || d == InterpTree {
		return d
	}
	return InterpVM
}

func (i Interp) resolve() Interp {
	if i == InterpVM || i == InterpTree {
		return i
	}
	return DefaultInterp()
}

// RunInterp is Run with an explicit execution engine.
func RunInterp(p *par.Program, args [][]float64, interp Interp) (*Report, error) {
	return RunContextInterp(context.Background(), p, args, interp)
}

// RunContextInterp is RunContext with an explicit execution engine.
func RunContextInterp(ctx context.Context, p *par.Program, args [][]float64, interp Interp) (*Report, error) {
	return run(ctx, p, args, nil, interp)
}

// RunFaultyInterp is RunFaulty with an explicit execution engine.
func RunFaultyInterp(ctx context.Context, p *par.Program, args [][]float64, spec fault.Spec, interp Interp) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return run(ctx, p, args, fault.New(spec), interp)
}
