package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"argo/internal/adl"
	"argo/internal/htg"
	"argo/internal/ir"
	"argo/internal/par"
	"argo/internal/sched"
	"argo/internal/scil"
	"argo/internal/syswcet"
	"argo/internal/transform"
	"argo/internal/wcet"
)

const pipelineSrc = `
function [outa, outb] = f(img)
  h = size(img, 1)
  w = size(img, 2)
  tmp = zeros(h, w)
  outa = zeros(h, w)
  outb = zeros(h, w)
  for i = 1:h
    for j = 1:w
      tmp(i, j) = img(i, j) * 2
    end
  end
  for i = 1:h
    for j = 1:w
      outa(i, j) = tmp(i, j) + 1
    end
  end
  for i = 1:h
    for j = 1:w
      outb(i, j) = tmp(i, j) - i + j
    end
  end
endfunction`

const branchySrc = `
function out = f(img)
  h = size(img, 1)
  w = size(img, 2)
  out = zeros(h, w)
  for i = 1:h
    for j = 1:w
      v = img(i, j)
      if v > 0 then
        out(i, j) = sqrt(v)
      else
        out(i, j) = -v * 3
      end
    end
  end
endfunction`

func buildPipeline(t *testing.T, src string, platform *adl.Platform, pol sched.Policy, spm bool, args ...ir.ArgSpec) *par.Program {
	t.Helper()
	sp, err := scil.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if errs := scil.Check(sp, scil.CheckWCET); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	prog, err := ir.Lower(sp, "f", args)
	if err != nil {
		t.Fatal(err)
	}
	opt := transform.Options{Fold: true, Fission: true}
	if spm {
		opt.SPM = &transform.SPMOptions{
			CapacityBytes:  platform.Cores[0].SPM.SizeBytes,
			SharedLatency:  platform.MaxSharedAccessIsolated(),
			SPMLatency:     platform.Cores[0].SPM.LatencyCycles,
			DMACostPerByte: platform.DMA.CyclesPerByte,
		}
	}
	transform.Apply(prog, opt)
	models := make([]wcet.CostModel, platform.NumCores())
	for c := range models {
		models[c] = wcet.ModelFor(platform, c)
	}
	// Phase-ordering feedback: buffer placement may demote SPM variables
	// (cross-core sharing), invalidating WCET annotations — re-analyze
	// until the placement is stable.
	for round := 0; ; round++ {
		g := htg.Build(prog)
		htg.Annotate(g, models)
		in := sched.FromHTG(g, platform)
		s, err := sched.Run(in, pol)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := syswcet.Analyze(in, s)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := par.Build(prog, g, in, s, sys, platform)
		if err != nil {
			t.Fatal(err)
		}
		if len(pp.Demoted) > 0 && round < 8 {
			continue // storage changed; redo the analyses
		}
		if err := pp.Validate(); err != nil {
			t.Fatal(err)
		}
		return pp
	}
}

func randImg(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()*100 - 40
	}
	return out
}

func TestSimFunctionalCorrectness(t *testing.T) {
	platform := adl.XentiumPlatform(4)
	pp := buildPipeline(t, pipelineSrc, platform, sched.ListContentionAware, false, ir.MatrixArg(8, 8))
	in := randImg(64, 3)
	want, err := ir.NewExec(pp.IR, nil).Run([][]float64{in})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(pp, [][]float64{in})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(want) {
		t.Fatalf("results: %d vs %d", len(rep.Results), len(want))
	}
	for i := range want {
		for k := range want[i] {
			if math.Abs(rep.Results[i][k]-want[i][k]) > 1e-12 {
				t.Fatalf("result %d elem %d: %g vs %g", i, k, rep.Results[i][k], want[i][k])
			}
		}
	}
}

func TestMeasuredWithinBounds(t *testing.T) {
	platforms := []*adl.Platform{
		adl.XentiumPlatform(1),
		adl.XentiumPlatform(2),
		adl.XentiumPlatform(4),
		adl.XentiumTDMPlatform(4),
		adl.Leon3TilePlatform(2, 2),
	}
	for _, platform := range platforms {
		for _, src := range []string{pipelineSrc, branchySrc} {
			pp := buildPipeline(t, src, platform, sched.ListContentionAware, false, ir.MatrixArg(8, 8))
			for seed := int64(0); seed < 5; seed++ {
				rep, err := Run(pp, [][]float64{randImg(64, seed)})
				if err != nil {
					t.Fatalf("%s: %v", platform.Name, err)
				}
				if err := CheckAgainstBounds(pp, rep); err != nil {
					t.Fatalf("%s seed %d: %v", platform.Name, seed, err)
				}
				if rep.ExecSpan <= 0 {
					t.Fatalf("%s: no execution time", platform.Name)
				}
			}
		}
	}
}

func TestMeasuredWithinBoundsWithSPM(t *testing.T) {
	platform := adl.XentiumPlatform(2)
	pp := buildPipeline(t, pipelineSrc, platform, sched.ListContentionAware, true, ir.MatrixArg(8, 8))
	rep, err := Run(pp, [][]float64{randImg(64, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAgainstBounds(pp, rep); err != nil {
		t.Fatal(err)
	}
	// Functional result must be unaffected by SPM placement.
	ppNo := buildPipeline(t, pipelineSrc, platform, sched.ListContentionAware, false, ir.MatrixArg(8, 8))
	repNo, err := Run(ppNo, [][]float64{randImg(64, 1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		for k := range rep.Results[i] {
			if rep.Results[i][k] != repNo.Results[i][k] {
				t.Fatal("SPM placement changed results")
			}
		}
	}
}

func TestParallelBeatsSequentialSimulated(t *testing.T) {
	in := randImg(16*16, 5)
	pp1 := buildPipeline(t, pipelineSrc, adl.XentiumPlatform(1), sched.ListContentionAware, false, ir.MatrixArg(16, 16))
	pp4 := buildPipeline(t, pipelineSrc, adl.XentiumPlatform(4), sched.ListContentionAware, false, ir.MatrixArg(16, 16))
	r1, err := Run(pp1, [][]float64{in})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(pp4, [][]float64{in})
	if err != nil {
		t.Fatal(err)
	}
	if r4.ExecSpan >= r1.ExecSpan {
		t.Fatalf("4 cores (%d) should beat 1 core (%d)", r4.ExecSpan, r1.ExecSpan)
	}
	// And the static bounds should agree on the direction.
	if pp4.System.Makespan >= pp1.System.Makespan {
		t.Fatalf("bound: 4 cores %d vs 1 core %d", pp4.System.Makespan, pp1.System.Makespan)
	}
}

func TestBusContentionObservable(t *testing.T) {
	platform := adl.XentiumPlatform(4)
	pp := buildPipeline(t, pipelineSrc, platform, sched.ListOblivious, false, ir.MatrixArg(12, 12))
	rep, err := Run(pp, [][]float64{randImg(144, 2)})
	if err != nil {
		t.Fatal(err)
	}
	// With several cores hammering shared memory, some arbitration
	// waiting must be visible.
	if rep.BusWaitCycles == 0 {
		t.Skip("schedule serialized everything; no contention to observe")
	}
	if err := CheckAgainstBounds(pp, rep); err != nil {
		t.Fatal(err)
	}
}

func TestTimeTriggeredReleaseRespected(t *testing.T) {
	platform := adl.XentiumPlatform(4)
	pp := buildPipeline(t, pipelineSrc, platform, sched.ListContentionAware, false, ir.MatrixArg(8, 8))
	rep, err := Run(pp, [][]float64{randImg(64, 9)})
	if err != nil {
		t.Fatal(err)
	}
	for tsk := range pp.Input.Tasks {
		if rep.TaskStart[tsk] < pp.System.Start[tsk] {
			t.Fatalf("task %d released early: %d < %d", tsk, rep.TaskStart[tsk], pp.System.Start[tsk])
		}
	}
}

func TestTightnessRatioReasonable(t *testing.T) {
	platform := adl.XentiumPlatform(2)
	pp := buildPipeline(t, pipelineSrc, platform, sched.ListContentionAware, false, ir.MatrixArg(8, 8))
	var worst int64
	for seed := int64(0); seed < 10; seed++ {
		rep, err := Run(pp, [][]float64{randImg(64, seed)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ExecSpan > worst {
			worst = rep.ExecSpan
		}
	}
	ratio := float64(pp.System.Makespan) / float64(worst)
	if ratio < 1 {
		t.Fatalf("bound below observed worst case: ratio %f", ratio)
	}
	if ratio > 5 {
		t.Fatalf("bound suspiciously loose: ratio %f", ratio)
	}
}

func TestRenderGantt(t *testing.T) {
	platform := adl.XentiumPlatform(2)
	pp := buildPipeline(t, pipelineSrc, platform, sched.ListContentionAware, false, ir.MatrixArg(8, 8))
	rep, err := Run(pp, [][]float64{randImg(64, 4)})
	if err != nil {
		t.Fatal(err)
	}
	g := RenderGantt(pp, rep, 60)
	if !strings.Contains(g, "core 0 |") || !strings.Contains(g, "core 1 |") {
		t.Fatalf("gantt:\n%s", g)
	}
	if !strings.Contains(g, "system bound") || !strings.Contains(g, "#") {
		t.Fatalf("gantt:\n%s", g)
	}
}

func TestRunPeriodicStream(t *testing.T) {
	platform := adl.XentiumPlatform(4)
	pp := buildPipeline(t, pipelineSrc, platform, sched.ListContentionAware, false, ir.MatrixArg(8, 8))
	period := pp.BoundMakespan() + 100 // feasible deadline
	rep, err := RunPeriodic(pp, period, 8, func(f int) [][]float64 {
		return [][]float64{randImg(64, int64(f))}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overruns != 0 {
		t.Fatalf("overruns: %d", rep.Overruns)
	}
	if len(rep.Makespans) != 8 || rep.WorstFrame <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	// An infeasible period must be reported as overruns, not hidden.
	tight, err := RunPeriodic(pp, rep.WorstFrame-1, 4, func(f int) [][]float64 {
		return [][]float64{randImg(64, int64(f))}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Overruns == 0 {
		t.Fatal("expected overruns under an infeasible period")
	}
}
