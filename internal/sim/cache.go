package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"expvar"
	"math"
	"sync"
	"sync/atomic"

	"argo/internal/ir"
	"argo/internal/ir/vm"
	"argo/internal/par"
	"argo/internal/wcet"
)

// Trace cache hit/miss counters, exported on /debug/vars (argod) next to
// the WCET bound cache counters.
var (
	traceCacheHits   = expvar.NewInt("argo_trace_cache_hits")
	traceCacheMisses = expvar.NewInt("argo_trace_cache_misses")
)

// Variant-trace memo counters: hits are VM-mode runs whose entry inputs
// matched a remembered run, so every trace-variant task replayed its
// memoized trace instead of being re-metered; misses are VM-mode runs
// that metered the variant tasks (and stored the result).
var (
	traceMemoHits   = expvar.NewInt("argo_trace_memo_hits")
	traceMemoMisses = expvar.NewInt("argo_trace_memo_misses")
)

// Bytecode-VM counters: compiles are per parallel program (compile once,
// execute per run), cache hits/misses count per-run compiled-code
// lookups, and fallbacks count runs that wanted the VM but executed on
// the tree walker (compilation failed or the program has no compiled
// form). All are exported on /debug/vars (argod).
var (
	vmCompiles    = expvar.NewInt("argo_vm_compiles")
	vmCacheHits   = expvar.NewInt("argo_vm_cache_hits")
	vmCacheMisses = expvar.NewInt("argo_vm_cache_misses")
	vmFallbacks   = expvar.NewInt("argo_vm_fallbacks")
)

// TraceCacheCounters returns the process-wide trace cache statistics.
func TraceCacheCounters() (hits, misses int64) {
	return traceCacheHits.Value(), traceCacheMisses.Value()
}

// TraceMemoCounters returns the process-wide variant-trace memo
// statistics.
func TraceMemoCounters() (hits, misses int64) {
	return traceMemoHits.Value(), traceMemoMisses.Value()
}

// VMCounters returns the process-wide bytecode-VM statistics.
func VMCounters() (compiles, hits, misses, fallbacks int64) {
	return vmCompiles.Value(), vmCacheHits.Value(), vmCacheMisses.Value(), vmFallbacks.Value()
}

// traceCache caches per-task segment traces and the compiled bytecode of
// one parallel program. The key of an entry is (task, cost model); both
// are implicit here because a task's core — and with it its cost model —
// is fixed by the program's schedule, and the cache lives in the
// program's own cache slot (same lifetime and invalidation as the
// program itself). The compiled bytecode is additionally cost-model
// independent: op charges are abstract units and Read/Write carry the
// variable, so the per-core cost model is applied by the meter, exactly
// as in tree-walk execution.
//
// Only tasks whose meter trace is input-invariant (ir.TraceEnv: no
// data-dependent control flow up to and inside the region) are cached;
// all other tasks are re-metered on every run, so cached and fresh
// simulations are bit-identical by construction.
type traceCache struct {
	invariant  []bool // task id -> trace provably input-invariant
	hasVariant bool   // any task needs per-run metering
	mu         sync.RWMutex
	traces     [][]segment // task id -> trace from the first metered run

	// Variant-trace memo: functional execution is deterministic in the
	// entry inputs, so the traces of the trace-variant tasks are a pure
	// function of (program, schedule, inputs) — the first two are fixed
	// per cache slot, which leaves the inputs as the key. Entries match
	// by full input comparison (the hash is only a prefilter), so a hit
	// replays exactly the trace a fresh metered run would record; no
	// collision can smuggle in a wrong trace. VM-mode only: the tree
	// walker stays the unaccelerated differential oracle.
	memoMu sync.RWMutex
	memo   []*memoEntry
	memoAt int // round-robin eviction cursor
	// Admission filter: hashes of recently metered input sets. A full
	// entry (a deep copy of the inputs plus the traces) is only stored
	// once an input hash repeats, so single-shot input sweeps never pay
	// the copy or grow the heap; steady repeat workloads reach all-hits
	// from the third occurrence on.
	seen   [2 * memoCap]uint64
	seenAt int

	// Compiled bytecode: one vm.Program with one region per task,
	// compiled on first VM-mode run. vmProg stays nil when compilation
	// fails, which demotes every VM-mode run of this program to the tree
	// walker (counted as a fallback).
	vmOnce  sync.Once
	vmReady atomic.Bool
	vmProg  *vm.Program
}

// memoEntry remembers the variant-task traces and the entry results of
// one run, keyed by the run's entry inputs. Results are memoized for
// the same reason traces are — functional execution is deterministic in
// the inputs — so a hit needs no execution at all: invariant traces
// come from the trace cache, everything else from here. Immutable once
// published.
type memoEntry struct {
	hash    uint64
	args    [][]float64
	traces  [][]segment // task id -> trace; nil for invariant tasks
	results [][]float64
}

// memoCap bounds the per-program variant-trace memo. Sixteen entries
// cover steady-state workloads that cycle through a bounded input set
// (what-if sessions, benchmark frames) without letting pathological
// input streams grow the cache without bound.
const memoCap = 16

// cacheInitMu serializes first-time cache construction per program (the
// slot itself is a lock-free fast path).
var cacheInitMu sync.Mutex

func cacheFor(p *par.Program) *traceCache {
	slot := p.CacheSlot()
	if c, ok := slot.Load().(*traceCache); ok {
		return c
	}
	cacheInitMu.Lock()
	defer cacheInitMu.Unlock()
	if c, ok := slot.Load().(*traceCache); ok {
		return c
	}
	nTasks := len(p.Input.Tasks)
	c := &traceCache{
		invariant: make([]bool, nTasks),
		traces:    make([][]segment, nTasks),
	}
	// The program is final by the time it is simulated: precompute the
	// per-statement meter charges so re-metered (trace-variant) tasks
	// pay a field read instead of an expression walk per statement.
	p.IR.AnnotateOpUnits()
	// Task regions execute in graph order (the same order RunContext
	// replays them), so the staticity environment flows region to region
	// exactly as the interpreter will.
	env := ir.NewTraceEnv(p.IR)
	for _, n := range p.Graph.Nodes {
		c.invariant[n.ID] = env.AdvanceRegion(n.Stmts)
	}
	for _, inv := range c.invariant {
		if !inv {
			c.hasVariant = true
			break
		}
	}
	slot.Store(c)
	return c
}

// argsHash folds the entry inputs into a 64-bit FNV-1a digest, a word at
// a time. Only a prefilter: lookupVariant compares the full inputs.
func argsHash(args [][]float64) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, a := range args {
		h = (h ^ uint64(len(a))) * prime
		for _, v := range a {
			h = (h ^ math.Float64bits(v)) * prime
		}
	}
	return h
}

// argsEqual reports bitwise equality of two input sets. Bitwise is
// deliberately finer than numeric equality (-0 vs +0, NaN payloads):
// equal bits guarantee identical execution, unequal bits only cost a
// conservative re-meter.
func argsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// lookupVariant returns the memoized variant-task traces and entry
// results for a run with the given entry inputs (nil if this input set
// must be executed), plus the input hash for a later storeVariant.
func (c *traceCache) lookupVariant(args [][]float64) ([][]segment, [][]float64, uint64) {
	if !c.hasVariant {
		return nil, nil, 0
	}
	h := argsHash(args)
	c.memoMu.RLock()
	defer c.memoMu.RUnlock()
	for _, e := range c.memo {
		if e.hash == h && argsEqual(e.args, args) {
			traceMemoHits.Add(1)
			return e.traces, e.results, h
		}
	}
	traceMemoMisses.Add(1)
	return nil, nil, h
}

// storeVariant remembers the variant-task traces and entry results of a
// completed run whose lookupVariant missed with input hash h. The first
// sighting of an input hash only records the hash (admission filter); a
// repeat sighting copies the inputs and results and retains the variant
// traces into an immutable entry, replacing the oldest slot
// (round-robin) when the memo is full.
func (c *traceCache) storeVariant(h uint64, args [][]float64, traces [][]segment, results [][]float64) {
	if !c.hasVariant {
		return
	}
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	repeat := false
	for _, s := range c.seen {
		if s == h {
			repeat = true
			break
		}
	}
	if !repeat {
		c.seen[c.seenAt] = h
		c.seenAt = (c.seenAt + 1) % len(c.seen)
		return
	}
	// A concurrent run may have stored the same inputs already; the
	// traces are identical either way, so a duplicate entry only wastes
	// a slot — skip it.
	for _, old := range c.memo {
		if old.hash == h && argsEqual(old.args, args) {
			return
		}
	}
	e := &memoEntry{
		hash:    h,
		args:    make([][]float64, len(args)),
		traces:  make([][]segment, len(traces)),
		results: cloneResults(results),
	}
	for i, a := range args {
		e.args[i] = append([]float64(nil), a...)
	}
	for t, tr := range traces {
		if !c.invariant[t] {
			e.traces[t] = tr
		}
	}
	if len(c.memo) < memoCap {
		c.memo = append(c.memo, e)
		return
	}
	c.memo[c.memoAt] = e
	c.memoAt = (c.memoAt + 1) % memoCap
}

// vmSharedKey content-addresses the compiled bytecode of p for the
// process-wide code cache: the whole-program IR fingerprint (variable
// table with storage classes in registration order, entry body — equal
// fingerprints imply structurally identical programs), the region
// partition in task order, and the superinstruction mask the code would
// be compiled under. CompileRegions reads nothing else, so equal keys
// yield behaviourally identical compiled Programs; sharing the Program
// value is safe because compiled code is immutable and the meter-facing
// surface only reads per-variable data the fingerprint covers.
func vmSharedKey(p *par.Program, regions [][]ir.Stmt) vm.CacheKey {
	h := sha256.New()
	fp := wcet.FingerprintProgram(p.IR)
	h.Write(fp[:])
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(regions)))
	h.Write(b[:])
	for _, stmts := range regions {
		rfp := wcet.FingerprintRegion(stmts)
		h.Write(rfp[:])
	}
	binary.LittleEndian.PutUint64(b[:], uint64(vm.SuperMask()))
	h.Write(b[:])
	var k vm.CacheKey
	h.Sum(k[:0])
	return k
}

// vmProgram returns the program's compiled bytecode, resolving it on the
// first VM-mode run: first from the process-wide shared code cache
// (another par.Program with identical IR and partition already paid the
// compile — sessions, feedback rounds, and argod requests share), else
// by compiling and publishing the result. A nil return means this run
// must fall back to the tree walker.
func (c *traceCache) vmProgram(p *par.Program) *vm.Program {
	if c.vmReady.Load() {
		if c.vmProg == nil {
			vmFallbacks.Add(1)
		} else {
			vmCacheHits.Add(1)
		}
		return c.vmProg
	}
	vmCacheMisses.Add(1)
	c.vmOnce.Do(func() {
		regions := make([][]ir.Stmt, len(p.Input.Tasks))
		for _, n := range p.Graph.Nodes {
			regions[n.ID] = n.Stmts
		}
		key := vmSharedKey(p, regions)
		if cp, ok := vm.SharedLookup(key); ok {
			c.vmProg = cp
			c.vmReady.Store(true)
			return
		}
		vmCompiles.Add(1)
		if cp, err := vm.CompileRegions(p.IR, regions); err == nil {
			c.vmProg = cp
			vm.SharedStore(key, cp)
		}
		c.vmReady.Store(true)
	})
	if c.vmProg == nil {
		vmFallbacks.Add(1)
	}
	return c.vmProg
}

// lookup returns the cached trace for task, or nil if the task must be
// metered (variant trace, or first run).
func (c *traceCache) lookup(task int) []segment {
	if !c.invariant[task] {
		traceCacheMisses.Add(1)
		return nil
	}
	c.mu.RLock()
	tr := c.traces[task]
	c.mu.RUnlock()
	if tr == nil {
		traceCacheMisses.Add(1)
	} else {
		traceCacheHits.Add(1)
	}
	return tr
}

// store remembers the freshly metered trace of an invariant task. The
// first stored trace wins; concurrent runs meter identical traces, so
// either copy is correct.
func (c *traceCache) store(task int, tr []segment) {
	if !c.invariant[task] {
		return
	}
	c.mu.Lock()
	if c.traces[task] == nil {
		c.traces[task] = tr
	}
	c.mu.Unlock()
}

// cloneResults deep-copies an entry-results set: the memo must neither
// retain caller-owned buffers nor hand its own out (reports are mutable
// by their callers).
func cloneResults(results [][]float64) [][]float64 {
	out := make([][]float64, len(results))
	for i, r := range results {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

// runState is the pooled mutable state of one simulation run: the
// interpreter (tree walker or bytecode machine), per-core event-loop
// cursors, and the signal tables. With it, the steady-state
// discrete-event loop performs no allocations and no map operations.
type runState struct {
	ex         *ir.Exec
	vm         *vm.Machine
	traces     [][]segment
	cores      []coreState
	signalTime []int64
	posted     []bool
}

var runPool = sync.Pool{New: func() any { return &runState{} }}

// prepare readies the pooled state for one run. cp selects the execution
// engine: non-nil binds the bytecode machine, nil the tree walker.
func (rs *runState) prepare(p *par.Program, cp *vm.Program) {
	if cp != nil {
		if rs.vm == nil {
			rs.vm = vm.NewMachine(cp, nil)
		} else {
			rs.vm.Reset(cp)
		}
	} else {
		if rs.ex == nil {
			rs.ex = ir.NewExec(p.IR, nil)
		} else {
			rs.ex.Reset(p.IR)
		}
	}
	rs.traces = growClear(rs.traces, len(p.Input.Tasks))
	rs.cores = growClear(rs.cores, p.Platform.NumCores())
	rs.signalTime = growClear(rs.signalTime, p.Signals)
	rs.posted = growClear(rs.posted, p.Signals)
}

// growClear returns s with length n and every element zeroed.
func growClear[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}
