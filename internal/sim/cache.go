package sim

import (
	"expvar"
	"sync"

	"argo/internal/ir"
	"argo/internal/par"
)

// Trace cache hit/miss counters, exported on /debug/vars (argod) next to
// the WCET bound cache counters.
var (
	traceCacheHits   = expvar.NewInt("argo_trace_cache_hits")
	traceCacheMisses = expvar.NewInt("argo_trace_cache_misses")
)

// TraceCacheCounters returns the process-wide trace cache statistics.
func TraceCacheCounters() (hits, misses int64) {
	return traceCacheHits.Value(), traceCacheMisses.Value()
}

// traceCache caches per-task segment traces of one parallel program. The
// key of an entry is (task, cost model); both are implicit here because a
// task's core — and with it its cost model — is fixed by the program's
// schedule, and the cache lives in the program's own cache slot.
//
// Only tasks whose meter trace is input-invariant (ir.TraceEnv: no
// data-dependent control flow up to and inside the region) are cached;
// all other tasks are re-metered on every run, so cached and fresh
// simulations are bit-identical by construction.
type traceCache struct {
	invariant []bool // task id -> trace provably input-invariant
	mu        sync.RWMutex
	traces    [][]segment // task id -> trace from the first metered run
}

// cacheInitMu serializes first-time cache construction per program (the
// slot itself is a lock-free fast path).
var cacheInitMu sync.Mutex

func cacheFor(p *par.Program) *traceCache {
	slot := p.CacheSlot()
	if c, ok := slot.Load().(*traceCache); ok {
		return c
	}
	cacheInitMu.Lock()
	defer cacheInitMu.Unlock()
	if c, ok := slot.Load().(*traceCache); ok {
		return c
	}
	nTasks := len(p.Input.Tasks)
	c := &traceCache{
		invariant: make([]bool, nTasks),
		traces:    make([][]segment, nTasks),
	}
	// The program is final by the time it is simulated: precompute the
	// per-statement meter charges so re-metered (trace-variant) tasks
	// pay a field read instead of an expression walk per statement.
	p.IR.AnnotateOpUnits()
	// Task regions execute in graph order (the same order RunContext
	// replays them), so the staticity environment flows region to region
	// exactly as the interpreter will.
	env := ir.NewTraceEnv(p.IR)
	for _, n := range p.Graph.Nodes {
		c.invariant[n.ID] = env.AdvanceRegion(n.Stmts)
	}
	slot.Store(c)
	return c
}

// lookup returns the cached trace for task, or nil if the task must be
// metered (variant trace, or first run).
func (c *traceCache) lookup(task int) []segment {
	if !c.invariant[task] {
		traceCacheMisses.Add(1)
		return nil
	}
	c.mu.RLock()
	tr := c.traces[task]
	c.mu.RUnlock()
	if tr == nil {
		traceCacheMisses.Add(1)
	} else {
		traceCacheHits.Add(1)
	}
	return tr
}

// store remembers the freshly metered trace of an invariant task. The
// first stored trace wins; concurrent runs meter identical traces, so
// either copy is correct.
func (c *traceCache) store(task int, tr []segment) {
	if !c.invariant[task] {
		return
	}
	c.mu.Lock()
	if c.traces[task] == nil {
		c.traces[task] = tr
	}
	c.mu.Unlock()
}

// runState is the pooled mutable state of one simulation run: the
// interpreter, per-core event-loop cursors, and the signal tables. With
// it, the steady-state discrete-event loop performs no allocations and
// no map operations.
type runState struct {
	ex         *ir.Exec
	traces     [][]segment
	cores      []coreState
	signalTime []int64
	posted     []bool
}

var runPool = sync.Pool{New: func() any { return &runState{} }}

func (rs *runState) prepare(p *par.Program) {
	if rs.ex == nil {
		rs.ex = ir.NewExec(p.IR, nil)
	} else {
		rs.ex.Reset(p.IR)
	}
	rs.traces = growClear(rs.traces, len(p.Input.Tasks))
	rs.cores = growClear(rs.cores, p.Platform.NumCores())
	rs.signalTime = growClear(rs.signalTime, p.Signals)
	rs.posted = growClear(rs.posted, p.Signals)
}

// growClear returns s with length n and every element zeroed.
func growClear[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}
