// Differential tests for the fault-injection layer (see docs/TESTING.md):
// a disabled fault spec must leave the simulator bit-identical to the
// recorded pre-injection goldens over every builtin platform × use case,
// and an enabled spec must be a pure function of its seed — byte-equal
// reports from concurrently racing runs.
//
// The external test package breaks the import cycle: the oracle compiles
// through internal/core, which itself imports internal/sim.
package sim_test

import (
	"bufio"
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"strings"
	"sync"
	"testing"

	"argo/internal/adl"
	"argo/internal/core"
	"argo/internal/fault"
	"argo/internal/sim"
	"argo/internal/usecases"
)

// fingerprint flattens a simulation report into one canonical line:
// every timing observable verbatim, plus an FNV-64a hash over the raw
// bit patterns of the numeric results (bit-identical, not epsilon-equal).
// The format must stay in sync with testdata/fault_golden.txt.
func fingerprint(rep *sim.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan=%d exec=%d buswait=%d pro=%d epi=%d",
		rep.Makespan, rep.ExecSpan, rep.BusWaitCycles, rep.PrologueCycles, rep.EpilogueCycles)
	b.WriteString(" starts=")
	for i, v := range rep.TaskStart {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteString(" finishes=")
	for i, v := range rep.TaskFinish {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	h := fnv.New64a()
	for _, row := range rep.Results {
		for _, v := range row {
			var buf [8]byte
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				buf[i] = byte(bits >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	fmt.Fprintf(&b, " results=%016x", h.Sum64())
	return b.String()
}

// loadGolden parses testdata/fault_golden.txt into
// (platform, usecase, seed) -> fingerprint.
func loadGolden(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open("testdata/fault_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	golden := make(map[string]string)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		parts := strings.SplitN(line, " ", 4)
		if len(parts) != 4 {
			t.Fatalf("malformed golden line: %q", line)
		}
		golden[parts[0]+" "+parts[1]+" "+parts[2]] = parts[3]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(golden) == 0 {
		t.Fatal("empty golden file")
	}
	return golden
}

// TestZeroFaultBitIdenticalToGolden: both the plain simulator and a
// RunFaulty call with the zero (disabled) spec must reproduce the
// golden fingerprints recorded before the injection layer existed, for
// every builtin platform × use case × input seed. Any drift — a stray
// injector allocation, a reordered event, a perturbed draw — shows up
// as a one-line diff here.
func TestZeroFaultBitIdenticalToGolden(t *testing.T) {
	golden := loadGolden(t)
	covered := 0
	for _, pname := range adl.BuiltinNames() {
		platform := adl.Builtin(pname)
		for _, u := range usecases.All() {
			u := u
			t.Run(pname+"/"+u.Name, func(t *testing.T) {
				t.Parallel()
				p, err := u.Program()
				if err != nil {
					t.Fatal(err)
				}
				art, err := core.Compile(p, core.DefaultOptions(u.Entry, u.Args, platform))
				if err != nil {
					t.Fatal(err)
				}
				for seed := int64(1); seed <= 2; seed++ {
					key := fmt.Sprintf("%s %s seed=%d", pname, u.Name, seed)
					want, ok := golden[key]
					if !ok {
						t.Fatalf("no golden fingerprint for %q", key)
					}
					plain, err := sim.Run(art.Parallel, u.Inputs(seed))
					if err != nil {
						t.Fatal(err)
					}
					if got := fingerprint(plain); got != want {
						t.Errorf("uninjected simulator drifted from golden\n key %s\n got  %s\n want %s", key, got, want)
					}
					zero, err := sim.RunFaulty(context.Background(), art.Parallel, u.Inputs(seed), fault.Spec{})
					if err != nil {
						t.Fatal(err)
					}
					if zero.Faults.Total() != 0 {
						t.Errorf("%s: disabled spec injected %d events", key, zero.Faults.Total())
					}
					if got := fingerprint(zero); got != want {
						t.Errorf("zero-fault run differs from uninjected golden\n key %s\n got  %s\n want %s", key, got, want)
					}
				}
			})
			covered += 2
		}
	}
	if covered != len(golden) {
		t.Errorf("matrix covers %d runs, golden file has %d", covered, len(golden))
	}
}

// TestFaultInjectionDeterministicPerSeed: an enabled spec is a pure
// function of (program, inputs, seed) — eight goroutines racing the
// same faulty simulation must produce byte-identical fingerprints and
// identical injection stats (run under -race in CI), and changing only
// the fault seed must actually change the injected pattern.
func TestFaultInjectionDeterministicPerSeed(t *testing.T) {
	u := usecases.ByName("weaa")
	if u == nil {
		t.Fatal("weaa use case missing")
	}
	p, err := u.Program()
	if err != nil {
		t.Fatal(err)
	}
	art, err := core.Compile(p, core.DefaultOptions(u.Entry, u.Args, adl.Builtin("xentium4")))
	if err != nil {
		t.Fatal(err)
	}
	spec := fault.Spec{Seed: 7, AccessJitter: 0.8, ExecInflation: 0.8, NoCStall: 0.5}

	const racers = 8
	prints := make([]string, racers)
	stats := make([]fault.Stats, racers)
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := sim.RunFaulty(context.Background(), art.Parallel, u.Inputs(1), spec)
			if err != nil {
				errs[i] = err
				return
			}
			prints[i] = fingerprint(rep)
			stats[i] = rep.Faults
		}(i)
	}
	wg.Wait()
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if prints[i] != prints[0] {
			t.Fatalf("racer %d diverged:\n%s\nvs\n%s", i, prints[i], prints[0])
		}
		if stats[i] != stats[0] {
			t.Fatalf("racer %d injected differently: %+v vs %+v", i, stats[i], stats[0])
		}
	}
	if stats[0].Total() == 0 {
		t.Fatal("enabled spec injected nothing — the determinism check is vacuous")
	}

	// A serial re-run reproduces the racers exactly.
	again, err := sim.RunFaulty(context.Background(), art.Parallel, u.Inputs(1), spec)
	if err != nil {
		t.Fatal(err)
	}
	if fp := fingerprint(again); fp != prints[0] {
		t.Fatalf("serial re-run differs from concurrent runs:\n%s\nvs\n%s", fp, prints[0])
	}

	// Same program, same inputs, different fault seed: the injected
	// pattern must move (otherwise the seed is dead).
	other := spec
	other.Seed = 8
	rep2, err := sim.RunFaulty(context.Background(), art.Parallel, u.Inputs(1), other)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(rep2) == prints[0] && rep2.Faults == stats[0] {
		t.Fatal("changing the fault seed changed nothing")
	}
}
