package sim

import (
	"fmt"
	"strings"

	"argo/internal/par"
)

// RenderGantt draws an ASCII timeline of one simulated run: one row per
// core, one column block per time bucket, with task ids in their actual
// execution windows and the static bound marked. Used by argosim -gantt
// and the cross-layer inspection workflow.
func RenderGantt(p *par.Program, rep *Report, width int) string {
	if width < 20 {
		width = 80
	}
	span := rep.ExecSpan
	if span <= 0 {
		return "(empty timeline)\n"
	}
	scale := float64(width) / float64(span)
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: %d cycles across %d columns (one '·' ≈ %.0f cycles)\n",
		span, width, 1/scale)
	// One pass over the placements groups tasks by core (ascending task
	// id within a core, matching the former core×task scan) instead of
	// rescanning every task for every core row.
	byCore := make([][]int, p.Platform.NumCores())
	for t := range p.Input.Tasks {
		c := p.Schedule.Placements[t].Core
		byCore[c] = append(byCore[c], t)
	}
	row := make([]byte, width)
	for c := range byCore {
		for i := range row {
			row[i] = '.'
		}
		for _, t := range byCore[c] {
			lo := int(float64(rep.TaskStart[t]) * scale)
			hi := int(float64(rep.TaskFinish[t]) * scale)
			if lo >= width {
				lo = width - 1
			}
			if hi >= width {
				hi = width - 1
			}
			label := fmt.Sprintf("%d", t)
			for i := lo; i <= hi && i < width; i++ {
				row[i] = '#'
			}
			for i, ch := range label {
				if lo+i <= hi && lo+i < width {
					row[lo+i] = byte(ch)
				}
			}
		}
		fmt.Fprintf(&sb, "core %d |%s|\n", c, string(row))
	}
	// Bound marker line.
	marker := make([]byte, width)
	for i := range marker {
		marker[i] = ' '
	}
	pos := int(float64(p.System.Makespan) * scale)
	if pos >= width {
		pos = width - 1
	}
	marker[pos] = '^'
	fmt.Fprintf(&sb, "bound  |%s| (system bound %d)\n", string(marker), p.System.Makespan)
	return sb.String()
}
