// Golden differential tests for the bytecode VM vs the tree walker: both
// execution engines must produce bit-identical simulation reports — and
// both must match the recorded goldens — across every builtin platform ×
// use case × input seed, with and without fault injection. This is the
// acceptance gate that lets the VM own the hot path while the tree
// walker stays the oracle (the SolveMIPReference pattern).
package sim_test

import (
	"context"
	"fmt"
	"testing"

	"argo/internal/adl"
	"argo/internal/core"
	"argo/internal/fault"
	"argo/internal/ir/vm"
	"argo/internal/sim"
	"argo/internal/usecases"
)

func TestInterpParse(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Interp
		err  bool
	}{
		{"vm", sim.InterpVM, false},
		{"tree", sim.InterpTree, false},
		{"auto", sim.InterpAuto, false},
		{"", sim.InterpAuto, false},
		{"jit", sim.InterpAuto, true},
	}
	for _, c := range cases {
		got, err := sim.ParseInterp(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseInterp(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	if sim.DefaultInterp() != sim.InterpVM {
		t.Errorf("default interpreter = %v, want vm", sim.DefaultInterp())
	}
}

// TestVMBitIdenticalToGolden: the VM engine and the tree engine must both
// reproduce the golden fingerprints for every builtin platform × use case
// × seed. Cross-engine identity over the full matrix plus identity to the
// pre-VM goldens pins results, task timings, bus waits and DMA phases
// bit-for-bit under both -interp modes.
func TestVMBitIdenticalToGolden(t *testing.T) {
	golden := loadGolden(t)
	for _, pname := range adl.BuiltinNames() {
		platform := adl.Builtin(pname)
		for _, u := range usecases.All() {
			u := u
			t.Run(pname+"/"+u.Name, func(t *testing.T) {
				t.Parallel()
				p, err := u.Program()
				if err != nil {
					t.Fatal(err)
				}
				art, err := core.Compile(p, core.DefaultOptions(u.Entry, u.Args, platform))
				if err != nil {
					t.Fatal(err)
				}
				for seed := int64(1); seed <= 2; seed++ {
					key := fmt.Sprintf("%s %s seed=%d", pname, u.Name, seed)
					want, ok := golden[key]
					if !ok {
						t.Fatalf("no golden fingerprint for %q", key)
					}
					vmRep, err := sim.RunInterp(art.Parallel, u.Inputs(seed), sim.InterpVM)
					if err != nil {
						t.Fatal(err)
					}
					if got := fingerprint(vmRep); got != want {
						t.Errorf("vm engine drifted from golden\n key %s\n got  %s\n want %s", key, got, want)
					}
					treeRep, err := sim.RunInterp(art.Parallel, u.Inputs(seed), sim.InterpTree)
					if err != nil {
						t.Fatal(err)
					}
					if got := fingerprint(treeRep); got != want {
						t.Errorf("tree engine drifted from golden\n key %s\n got  %s\n want %s", key, got, want)
					}
					if len(sim.Violations(art.Parallel, vmRep)) != len(sim.Violations(art.Parallel, treeRep)) {
						t.Errorf("%s: violation count differs between engines", key)
					}
				}
			})
		}
	}
}

// TestVMFaultyBitIdenticalAcrossEngines: fault injection consumes the
// traces phase 0 produces, so an enabled spec is the sharpest cross-check
// that both engines meter identical segment structure — the injected
// pattern, stats, and the full report must match across engines.
func TestVMFaultyBitIdenticalAcrossEngines(t *testing.T) {
	spec := fault.Spec{Seed: 11, AccessJitter: 0.7, ExecInflation: 0.7, NoCStall: 0.4}
	for _, pname := range []string{"xentium4", "leon3-2x2"} {
		platform := adl.Builtin(pname)
		if platform == nil {
			t.Fatalf("missing builtin platform %s", pname)
		}
		for _, u := range usecases.All() {
			p, err := u.Program()
			if err != nil {
				t.Fatal(err)
			}
			art, err := core.Compile(p, core.DefaultOptions(u.Entry, u.Args, platform))
			if err != nil {
				t.Fatal(err)
			}
			vmRep, err := sim.RunFaultyInterp(context.Background(), art.Parallel, u.Inputs(1), spec, sim.InterpVM)
			if err != nil {
				t.Fatal(err)
			}
			treeRep, err := sim.RunFaultyInterp(context.Background(), art.Parallel, u.Inputs(1), spec, sim.InterpTree)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := fingerprint(vmRep), fingerprint(treeRep); a != b {
				t.Errorf("%s/%s: faulty run differs between engines\n vm   %s\n tree %s", pname, u.Name, a, b)
			}
			if vmRep.Faults != treeRep.Faults {
				t.Errorf("%s/%s: injected stats differ: vm=%+v tree=%+v", pname, u.Name, vmRep.Faults, treeRep.Faults)
			}
		}
	}
}

// TestVariantTraceMemo: repeat VM runs over a bounded input set must
// replay memoized variant-task traces (memo hits move) while staying
// bit-identical to the first metered run and to the tree oracle — with
// and without fault injection, which consumes the memoized traces.
func TestVariantTraceMemo(t *testing.T) {
	u := usecases.ByName("polka")
	if u == nil {
		t.Fatal("polka use case missing")
	}
	p, err := u.Program()
	if err != nil {
		t.Fatal(err)
	}
	art, err := core.Compile(p, core.DefaultOptions(u.Entry, u.Args, adl.Builtin("xentium4")))
	if err != nil {
		t.Fatal(err)
	}
	h0, m0 := sim.TraceMemoCounters()
	want := make(map[int64]string)
	// Round 1 records input hashes (admission filter), round 2 stores
	// full entries, rounds 3-4 hit.
	for round := 0; round < 4; round++ {
		for seed := int64(1); seed <= 3; seed++ {
			rep, err := sim.RunInterp(art.Parallel, u.Inputs(seed), sim.InterpVM)
			if err != nil {
				t.Fatal(err)
			}
			got := fingerprint(rep)
			if round == 0 {
				want[seed] = got
			} else if got != want[seed] {
				t.Errorf("seed %d round %d: memoized run drifted\n got  %s\n want %s", seed, round, got, want[seed])
			}
		}
	}
	h1, m1 := sim.TraceMemoCounters()
	if h1-h0 < 6 {
		t.Errorf("memo hits moved by %d, want >= 6 (rounds 3-4 must hit)", h1-h0)
	}
	if m1-m0 < 6 {
		t.Errorf("memo misses moved by %d, want >= 6 (rounds 1-2 must miss)", m1-m0)
	}
	for seed := int64(1); seed <= 3; seed++ {
		rep, err := sim.RunInterp(art.Parallel, u.Inputs(seed), sim.InterpTree)
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(rep); got != want[seed] {
			t.Errorf("seed %d: tree oracle differs from memoized VM run\n vm   %s\n tree %s", seed, want[seed], got)
		}
	}
	// Fault injection inflates and jitters the traces phase 0 hands over;
	// a memo-hit input must produce the same injected run as the oracle.
	spec := fault.Spec{Seed: 7, AccessJitter: 0.5, ExecInflation: 0.5}
	vmRep, err := sim.RunFaultyInterp(context.Background(), art.Parallel, u.Inputs(2), spec, sim.InterpVM)
	if err != nil {
		t.Fatal(err)
	}
	treeRep, err := sim.RunFaultyInterp(context.Background(), art.Parallel, u.Inputs(2), spec, sim.InterpTree)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := fingerprint(vmRep), fingerprint(treeRep); a != b {
		t.Errorf("faulty memo-hit run differs from oracle\n vm   %s\n tree %s", a, b)
	}
}

// TestVMCountersMove sanity-checks the expvar instrumentation: a VM run
// registers compile and cache activity.
func TestVMCountersMove(t *testing.T) {
	u := usecases.ByName("polka")
	if u == nil {
		t.Fatal("polka use case missing")
	}
	p, err := u.Program()
	if err != nil {
		t.Fatal(err)
	}
	art, err := core.Compile(p, core.DefaultOptions(u.Entry, u.Args, adl.Builtin("xentium4")))
	if err != nil {
		t.Fatal(err)
	}
	// A shared-cache hit would legitimately skip the compile; empty the
	// shared code cache so this compilation is observable.
	vm.SharedReset()
	c0, h0, m0, _ := sim.VMCounters()
	for i := 0; i < 3; i++ {
		if _, err := sim.RunInterp(art.Parallel, u.Inputs(1), sim.InterpVM); err != nil {
			t.Fatal(err)
		}
	}
	c1, h1, m1, _ := sim.VMCounters()
	if c1 <= c0 {
		t.Errorf("vm compiles did not move: %d -> %d", c0, c1)
	}
	if h1 <= h0 {
		t.Errorf("vm cache hits did not move: %d -> %d", h0, h1)
	}
	if m1 <= m0 {
		t.Errorf("vm cache misses did not move: %d -> %d", m0, m1)
	}
}
