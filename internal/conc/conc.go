// Package conc is the bounded worker pool used by the optimizer's
// candidate ladder and the experiment tables. It provides deterministic
// fan-out: work items are claimed from an atomic counter in index order
// and callers store results by index, so the reduction order — and
// therefore every published result — is independent of scheduling.
//
// The pool publishes an expvar gauge, "argo_candidate_workers", counting
// in-flight workers across all concurrent fan-outs in the process.
package conc

import (
	"context"
	"expvar"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// InFlight is the number of currently running worker functions, exported
// as the expvar gauge "argo_candidate_workers" (visible on /debug/vars
// when the expvar HTTP handler is installed, as argod does).
var InFlight = expvar.NewInt("argo_candidate_workers")

// Normalize resolves a requested parallelism degree: values <= 0 mean
// GOMAXPROCS (the default for all fan-outs).
func Normalize(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most Normalize(p)
// goroutines and blocks until all started work has finished. Indices are
// claimed in ascending order; fn must write its result into
// index-addressed storage so callers can reduce deterministically.
//
// If ctx is cancelled, no new indices are started (in-flight calls run
// to completion) and ForEach reports ctx.Err(); it returns nil once
// every index has run, even if ctx was cancelled afterwards.
func ForEach(ctx context.Context, p, n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	p = Normalize(p)
	if p > n {
		p = n
	}
	var done int64
	if p == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			InFlight.Add(1)
			fn(i)
			InFlight.Add(-1)
			done++
		}
		return nil
	}
	next := int64(-1)
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				InFlight.Add(1)
				fn(i)
				InFlight.Add(-1)
				atomic.AddInt64(&done, 1)
			}
		}()
	}
	wg.Wait()
	if atomic.LoadInt64(&done) == int64(n) {
		return nil
	}
	return ctx.Err()
}

// ForEachOn is the heterogeneous-worker variant of ForEach — the seam
// remote candidate workers plug into. widths[w] goroutines run on
// behalf of worker w (a worker is typically one analysis replica, its
// width that replica's fan-out slots; a zero or negative width
// contributes no goroutines). Every goroutine claims indices from one
// shared atomic counter in ascending order and calls fn(w, i), so work
// spreads across workers by availability while callers still reduce
// deterministically by storing results at index i — the reduction, and
// therefore every published result, is bit-identical at any worker
// count or width.
//
// Cancellation matches ForEach: once ctx is cancelled no new indices
// start, in-flight calls finish, and ForEachOn reports ctx.Err() unless
// every index already ran.
func ForEachOn(ctx context.Context, widths []int, n int, fn func(worker, i int)) error {
	if n <= 0 {
		return nil
	}
	total := 0
	for _, w := range widths {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return fmt.Errorf("conc: no worker slots")
	}
	var done int64
	next := int64(-1)
	var wg sync.WaitGroup
	for w, width := range widths {
		for s := 0; s < width; s++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(atomic.AddInt64(&next, 1))
					if i >= n {
						return
					}
					InFlight.Add(1)
					fn(w, i)
					InFlight.Add(-1)
					atomic.AddInt64(&done, 1)
				}
			}(w)
		}
	}
	wg.Wait()
	if atomic.LoadInt64(&done) == int64(n) {
		return nil
	}
	return ctx.Err()
}
