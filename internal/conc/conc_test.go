package conc

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, p := range []int{0, 1, 2, 7, 64} {
		n := 100
		counts := make([]int64, n)
		if err := ForEach(context.Background(), p, n, func(i int) {
			atomic.AddInt64(&counts[i], 1)
		}); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("p=%d: index %d visited %d times", p, i, c)
			}
		}
	}
}

func TestForEachResultsAreIndexAddressed(t *testing.T) {
	n := 50
	out := make([]int, n)
	if err := ForEach(context.Background(), 8, n, func(i int) { out[i] = i * i }); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForEachCancelledSkipsRemaining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	err := ForEach(ctx, 2, 1000, func(i int) {
		if atomic.AddInt64(&ran, 1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got := atomic.LoadInt64(&ran); got >= 1000 {
		t.Fatalf("cancellation did not skip work (ran %d)", got)
	}
}

func TestForEachCompletedIgnoresLateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Everything already done before the workers observe cancellation is
	// still success — but with a pre-cancelled context nothing runs.
	err := ForEach(ctx, 4, 10, func(i int) { t.Errorf("fn ran for %d", i) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) { t.Error("fn ran") }); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Normalize(0) = %d", got)
	}
	if got := Normalize(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Normalize(-3) = %d", got)
	}
	if got := Normalize(5); got != 5 {
		t.Fatalf("Normalize(5) = %d", got)
	}
}

func TestInFlightGaugeReturnsToZero(t *testing.T) {
	if err := ForEach(context.Background(), 4, 20, func(int) {}); err != nil {
		t.Fatal(err)
	}
	if v := InFlight.Value(); v != 0 {
		t.Fatalf("InFlight = %d after ForEach returned", v)
	}
}

func TestForEachOnCoversEveryIndexOnce(t *testing.T) {
	var counts [40]atomic.Int64
	workerSeen := make([]atomic.Int64, 3)
	err := ForEachOn(context.Background(), []int{2, 1, 3}, len(counts), func(w, i int) {
		counts[i].Add(1)
		workerSeen[w].Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
	var total int64
	for w := range workerSeen {
		total += workerSeen[w].Load()
	}
	if total != int64(len(counts)) {
		t.Fatalf("workers ran %d items, want %d", total, len(counts))
	}
}

func TestForEachOnSkipsNonPositiveWidths(t *testing.T) {
	err := ForEachOn(context.Background(), []int{0, 2, -1}, 10, func(w, i int) {
		if w != 1 {
			t.Errorf("worker %d ran despite width <= 0", w)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForEachOnNoSlots(t *testing.T) {
	if err := ForEachOn(context.Background(), []int{0, -2}, 5, func(int, int) {}); err == nil {
		t.Fatal("no worker slots accepted")
	}
	if err := ForEachOn(context.Background(), nil, 5, func(int, int) {}); err == nil {
		t.Fatal("empty widths accepted")
	}
	// Zero items succeed trivially, even with no slots.
	if err := ForEachOn(context.Background(), nil, 0, func(int, int) { t.Error("fn ran") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := ForEachOn(ctx, []int{1, 1}, 1000, func(w, i int) {
		if started.Add(1) == 10 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("cancelled run reported nil")
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("all %d items ran despite cancellation", n)
	}
	if v := InFlight.Value(); v != 0 {
		t.Fatalf("InFlight = %d after cancelled ForEachOn", v)
	}
}

// The reduction contract: results stored by index are identical at any
// worker/width shape.
func TestForEachOnDeterministicByIndex(t *testing.T) {
	shapes := [][]int{{1}, {4}, {1, 1, 1}, {2, 3}, {1, 0, 5}}
	var want []int
	for _, widths := range shapes {
		out := make([]int, 64)
		if err := ForEachOn(context.Background(), widths, len(out), func(w, i int) {
			out[i] = i * i
		}); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = out
			continue
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("widths %v: out[%d] = %d, want %d", widths, i, out[i], want[i])
			}
		}
	}
}
