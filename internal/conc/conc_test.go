package conc

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, p := range []int{0, 1, 2, 7, 64} {
		n := 100
		counts := make([]int64, n)
		if err := ForEach(context.Background(), p, n, func(i int) {
			atomic.AddInt64(&counts[i], 1)
		}); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("p=%d: index %d visited %d times", p, i, c)
			}
		}
	}
}

func TestForEachResultsAreIndexAddressed(t *testing.T) {
	n := 50
	out := make([]int, n)
	if err := ForEach(context.Background(), 8, n, func(i int) { out[i] = i * i }); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForEachCancelledSkipsRemaining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	err := ForEach(ctx, 2, 1000, func(i int) {
		if atomic.AddInt64(&ran, 1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got := atomic.LoadInt64(&ran); got >= 1000 {
		t.Fatalf("cancellation did not skip work (ran %d)", got)
	}
}

func TestForEachCompletedIgnoresLateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Everything already done before the workers observe cancellation is
	// still success — but with a pre-cancelled context nothing runs.
	err := ForEach(ctx, 4, 10, func(i int) { t.Errorf("fn ran for %d", i) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) { t.Error("fn ran") }); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Normalize(0) = %d", got)
	}
	if got := Normalize(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Normalize(-3) = %d", got)
	}
	if got := Normalize(5); got != 5 {
		t.Fatalf("Normalize(5) = %d", got)
	}
}

func TestInFlightGaugeReturnsToZero(t *testing.T) {
	if err := ForEach(context.Background(), 4, 20, func(int) {}); err != nil {
		t.Fatal(err)
	}
	if v := InFlight.Value(); v != 0 {
		t.Fatalf("InFlight = %d after ForEach returned", v)
	}
}
