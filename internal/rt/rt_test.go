package rt

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"argo/internal/adl"
	"argo/internal/core"
	"argo/internal/usecases"
)

func TestHyperperiodAndUtilization(t *testing.T) {
	jobs := []Job{
		{Name: "a", BoundCycles: 10, PeriodCycles: 40},
		{Name: "b", BoundCycles: 30, PeriodCycles: 120},
	}
	if h := Hyperperiod(jobs); h != 120 {
		t.Fatalf("hyperperiod = %d", h)
	}
	if u := Utilization(jobs); u != 0.5 {
		t.Fatalf("utilization = %f", u)
	}
}

func TestHarmonicSetSchedulable(t *testing.T) {
	jobs := []Job{
		{Name: "fast", BoundCycles: 20, PeriodCycles: 100},
		{Name: "mid", BoundCycles: 50, PeriodCycles: 200},
		{Name: "slow", BoundCycles: 100, PeriodCycles: 400},
	}
	cs, err := BuildCyclicExecutive(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	// fast runs 4x, mid 2x, slow 1x per hyperperiod 400.
	if len(cs.Slots) != 7 {
		t.Fatalf("slots = %d", len(cs.Slots))
	}
}

func TestOverloadRejected(t *testing.T) {
	jobs := []Job{
		{Name: "a", BoundCycles: 80, PeriodCycles: 100},
		{Name: "b", BoundCycles: 50, PeriodCycles: 100},
	}
	if _, err := BuildCyclicExecutive(jobs); err == nil || !strings.Contains(err.Error(), "utilization") {
		t.Fatalf("err = %v", err)
	}
}

func TestBoundExceedingPeriodRejected(t *testing.T) {
	jobs := []Job{{Name: "a", BoundCycles: 200, PeriodCycles: 100}}
	if _, err := BuildCyclicExecutive(jobs); err == nil {
		t.Fatal("expected rejection")
	}
}

func TestNonPreemptiveBlockingDetected(t *testing.T) {
	// A very long low-rate job can block a short high-rate one past its
	// deadline under non-preemptive EDF; the builder must refuse rather
	// than emit an invalid timeline.
	jobs := []Job{
		{Name: "hog", BoundCycles: 190, PeriodCycles: 200},
		{Name: "tick", BoundCycles: 5, PeriodCycles: 50},
	}
	cs, err := BuildCyclicExecutive(jobs)
	if err == nil {
		if verr := cs.Validate(); verr != nil {
			t.Fatalf("builder emitted invalid schedule: %v", verr)
		}
		t.Fatal("expected non-schedulable verdict for the blocking set")
	}
}

func TestSlackReport(t *testing.T) {
	jobs := []Job{
		{Name: "a", BoundCycles: 30, PeriodCycles: 100},
		{Name: "b", BoundCycles: 20, PeriodCycles: 100},
	}
	cs, err := BuildCyclicExecutive(jobs)
	if err != nil {
		t.Fatal(err)
	}
	slack := cs.SlackReport()
	if slack["a"] <= 0 || slack["b"] <= 0 {
		t.Fatalf("slack: %v", slack)
	}
}

// Property: any schedule the builder emits validates, for random
// low-utilization harmonic-ish job sets.
func TestBuilderSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		periods := []int64{100, 200, 400, 800}
		n := 1 + rng.Intn(4)
		var jobs []Job
		for i := 0; i < n; i++ {
			p := periods[rng.Intn(len(periods))]
			jobs = append(jobs, Job{
				Name:         string(rune('a' + i)),
				BoundCycles:  1 + int64(rng.Intn(int(p/4))),
				PeriodCycles: p,
			})
		}
		cs, err := BuildCyclicExecutive(jobs)
		if err != nil {
			return true // refusing is allowed; emitting garbage is not
		}
		return cs.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestARGOUseCasesShareOnePlatform is the integration scenario: all three
// ARGO applications, compiled to their system bounds on one multi-core,
// run under a single cyclic executive within their real-time periods.
func TestARGOUseCasesShareOnePlatform(t *testing.T) {
	platform := adl.XentiumPlatform(8)
	var jobs []Job
	for _, u := range usecases.All() {
		p, err := u.Program()
		if err != nil {
			t.Fatal(err)
		}
		art, err := core.Compile(p, core.DefaultOptions(u.Entry, u.Args, platform))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{Name: u.Name, BoundCycles: art.Bound(), PeriodCycles: u.Period})
	}
	u := Utilization(jobs)
	if u >= 1 {
		t.Fatalf("platform overloaded: utilization %.3f", u)
	}
	cs, err := BuildCyclicExecutive(jobs)
	if err != nil {
		t.Fatalf("ARGO job set not schedulable: %v (utilization %.3f)", err, u)
	}
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, slack := range cs.SlackReport() {
		if slack < 0 {
			t.Fatalf("%s negative slack", name)
		}
	}
	t.Logf("utilization %.3f over hyperperiod %d with %d slots", u, cs.Hyperperiod, len(cs.Slots))
}
