// Package rt adds the periodic real-time layer on top of the ARGO
// tool-chain: applications compiled to a system-level WCET bound run
// periodically (the use cases are activated per frame / per control
// cycle), and multiple applications can share one platform under a static
// cyclic executive — the classic deployment model for time-triggered
// avionics and industrial controllers, and the context in which the
// paper's guaranteed bounds are consumed.
//
// The package computes utilization, builds a non-preemptive
// earliest-deadline-first cyclic executive over the hyperperiod, and
// validates the result (all instances scheduled, no overlap, deadlines
// met).
package rt

import (
	"fmt"
	"sort"
)

// Job is one periodically activated application.
type Job struct {
	Name string
	// BoundCycles is the application's system-level WCET bound.
	BoundCycles int64
	// PeriodCycles is the activation period (== relative deadline).
	PeriodCycles int64
}

// Utilization returns the total processor demand of the job set.
func Utilization(jobs []Job) float64 {
	u := 0.0
	for _, j := range jobs {
		u += float64(j.BoundCycles) / float64(j.PeriodCycles)
	}
	return u
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 { return a / gcd(a, b) * b }

// Hyperperiod returns the LCM of all periods.
func Hyperperiod(jobs []Job) int64 {
	h := int64(1)
	for _, j := range jobs {
		h = lcm(h, j.PeriodCycles)
	}
	return h
}

// Slot is one scheduled job instance in the cyclic executive.
type Slot struct {
	Job      int
	Instance int
	Release  int64
	Deadline int64
	Start    int64
	Finish   int64
}

// CyclicSchedule is a static timeline over one hyperperiod.
type CyclicSchedule struct {
	Jobs        []Job
	Hyperperiod int64
	Slots       []Slot
}

// BuildCyclicExecutive constructs a non-preemptive EDF timeline over the
// hyperperiod. It fails when a deadline cannot be met (non-preemptive EDF
// is not optimal, but for the frame-based workloads ARGO targets —
// bounds well below periods — it is effective and the result is
// verifiable).
func BuildCyclicExecutive(jobs []Job) (*CyclicSchedule, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("rt: empty job set")
	}
	for _, j := range jobs {
		if j.BoundCycles <= 0 || j.PeriodCycles <= 0 {
			return nil, fmt.Errorf("rt: job %q has non-positive bound or period", j.Name)
		}
		if j.BoundCycles > j.PeriodCycles {
			return nil, fmt.Errorf("rt: job %q bound %d exceeds its period %d", j.Name, j.BoundCycles, j.PeriodCycles)
		}
	}
	if u := Utilization(jobs); u > 1 {
		return nil, fmt.Errorf("rt: utilization %.3f > 1", u)
	}
	h := Hyperperiod(jobs)
	// Generate all instances over the hyperperiod.
	var pending []Slot
	for ji, j := range jobs {
		for k := int64(0); k*j.PeriodCycles < h; k++ {
			pending = append(pending, Slot{
				Job: ji, Instance: int(k),
				Release:  k * j.PeriodCycles,
				Deadline: (k + 1) * j.PeriodCycles,
			})
		}
	}
	cs := &CyclicSchedule{Jobs: jobs, Hyperperiod: h}
	var now int64
	for len(pending) > 0 {
		// Among released instances, pick earliest deadline; if none
		// released, advance to the next release.
		best := -1
		var nextRelease int64 = 1<<62 - 1
		for i, p := range pending {
			if p.Release <= now {
				if best < 0 || p.Deadline < pending[best].Deadline ||
					(p.Deadline == pending[best].Deadline && p.Job < pending[best].Job) {
					best = i
				}
			} else if p.Release < nextRelease {
				nextRelease = p.Release
			}
		}
		if best < 0 {
			now = nextRelease
			continue
		}
		p := pending[best]
		p.Start = now
		p.Finish = now + jobs[p.Job].BoundCycles
		if p.Finish > p.Deadline {
			return nil, fmt.Errorf("rt: job %q instance %d misses its deadline (%d > %d) — set not schedulable non-preemptively",
				jobs[p.Job].Name, p.Instance, p.Finish, p.Deadline)
		}
		now = p.Finish
		cs.Slots = append(cs.Slots, p)
		pending = append(pending[:best], pending[best+1:]...)
	}
	sort.Slice(cs.Slots, func(i, j int) bool { return cs.Slots[i].Start < cs.Slots[j].Start })
	return cs, nil
}

// Validate re-checks every structural property of the timeline.
func (cs *CyclicSchedule) Validate() error {
	counts := make(map[int]int)
	var prevFinish int64
	for i, s := range cs.Slots {
		j := cs.Jobs[s.Job]
		if s.Start < s.Release {
			return fmt.Errorf("rt: slot %d starts before release", i)
		}
		if s.Finish-s.Start != j.BoundCycles {
			return fmt.Errorf("rt: slot %d duration %d != bound %d", i, s.Finish-s.Start, j.BoundCycles)
		}
		if s.Finish > s.Deadline {
			return fmt.Errorf("rt: slot %d misses deadline", i)
		}
		if s.Start < prevFinish {
			return fmt.Errorf("rt: slot %d overlaps its predecessor", i)
		}
		prevFinish = s.Finish
		counts[s.Job]++
	}
	for ji, j := range cs.Jobs {
		want := int(cs.Hyperperiod / j.PeriodCycles)
		if counts[ji] != want {
			return fmt.Errorf("rt: job %q scheduled %d times, want %d", j.Name, counts[ji], want)
		}
	}
	return nil
}

// SlackReport summarizes per-job margin: the minimum (deadline - finish)
// over all instances, i.e. how much the bound could grow before the
// timeline breaks.
func (cs *CyclicSchedule) SlackReport() map[string]int64 {
	out := map[string]int64{}
	for _, s := range cs.Slots {
		name := cs.Jobs[s.Job].Name
		slack := s.Deadline - s.Finish
		if cur, ok := out[name]; !ok || slack < cur {
			out[name] = slack
		}
	}
	return out
}
