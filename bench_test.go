// Package bench is the benchmark harness of the reproduction: one
// testing.B benchmark per experiment table (E1..E9, see DESIGN.md §4 and
// EXPERIMENTS.md) plus micro-benchmarks of the tool-chain stages. Run:
//
//	go test -bench=. -benchmem .
//
// The experiment benchmarks report their headline metric via
// b.ReportMetric (speedup, tightness, gap, ...), so the bench output
// regenerates the numbers recorded in EXPERIMENTS.md; cmd/argobench
// prints the full tables.
package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"argo/internal/adl"
	"argo/internal/cluster"
	"argo/internal/core"
	"argo/internal/experiments"
	"argo/internal/fault"
	"argo/internal/htg"
	"argo/internal/ir"
	"argo/internal/ir/slice"
	"argo/internal/ir/vm"
	"argo/internal/lp"
	"argo/internal/noc"
	"argo/internal/pass"
	"argo/internal/sched"
	"argo/internal/scil"
	"argo/internal/session"
	"argo/internal/sim"
	"argo/internal/syswcet"
	"argo/internal/transform"
	"argo/internal/usecases"
	"argo/internal/wcet"
	"argo/internal/wcet/mc"
	"argo/pkg/argo"
)

// BenchmarkE1WCETSpeedup regenerates the E1 table (guaranteed speedup of
// automatic parallelization per use case and core count) and reports the
// best speedup observed.
func BenchmarkE1WCETSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.E1([]int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, r := range rows {
			if r.Speedup > best {
				best = r.Speedup
			}
		}
		b.ReportMetric(best, "best-speedup")
	}
}

// BenchmarkE2Tightness regenerates the E2 table (bound vs worst simulated
// run) and reports the worst (largest) work-tightness ratio.
func BenchmarkE2Tightness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.E2(10, 4)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range rows {
			if r.Tightness < 1 {
				b.Fatalf("%s unsound: %f", r.UseCase, r.Tightness)
			}
			if r.WorkTightness > worst {
				worst = r.WorkTightness
			}
		}
		b.ReportMetric(worst, "worst-work-tightness")
	}
}

// BenchmarkE3Contention regenerates the E3 table (contention-aware vs
// oblivious scheduling) and reports the mean oblivious/aware ratio.
func BenchmarkE3Contention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.E3([]int{4, 8})
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.ImprovementRatio
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-oblivious/aware")
	}
}

// BenchmarkE4Transforms regenerates the E4 ablation table and reports the
// mean bound reduction of the best configuration vs none.
func BenchmarkE4Transforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.E4(4)
		if err != nil {
			b.Fatal(err)
		}
		byUC := map[string]map[string]int64{}
		for _, r := range rows {
			if byUC[r.UseCase] == nil {
				byUC[r.UseCase] = map[string]int64{}
			}
			byUC[r.UseCase][r.Config] = r.Bound
		}
		sum, n := 0.0, 0
		for _, m := range byUC {
			best := m["none"]
			for _, v := range m {
				if v < best {
					best = v
				}
			}
			sum += float64(m["none"]) / float64(best)
			n++
		}
		b.ReportMetric(sum/float64(n), "mean-none/best")
	}
}

// BenchmarkE5NoC regenerates the E5 table (analytic vs simulated NoC
// latency) and reports the minimum bound/sim slack (must be >= 1).
func BenchmarkE5NoC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.E5(20000)
		if err != nil {
			b.Fatal(err)
		}
		minSlack := 1e18
		for _, r := range rows {
			if r.SimMax == 0 {
				continue
			}
			s := float64(r.Bound) / float64(r.SimMax)
			if s < minSlack {
				minSlack = s
			}
		}
		if minSlack < 1 {
			b.Fatalf("NoC bound violated: slack %f", minSlack)
		}
		b.ReportMetric(minSlack, "min-bound/sim")
	}
}

// BenchmarkE6Mapping regenerates the E6 table (heuristic vs exact
// mapping) and reports the overall mean optimality gap.
func BenchmarkE6Mapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.E6(5)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.MeanGap
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-gap")
	}
}

// BenchmarkE7Iterative regenerates the E7 table (iterative cross-layer
// optimization) and reports the mean first/best bound improvement.
func BenchmarkE7Iterative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.E7(4)
		if err != nil {
			b.Fatal(err)
		}
		first := map[string]int64{}
		best := map[string]int64{}
		for _, r := range rows {
			if _, ok := first[r.UseCase]; !ok && r.Bound > 0 {
				first[r.UseCase] = r.Bound
			}
			best[r.UseCase] = r.BestSoFar
		}
		sum, n := 0.0, 0
		for uc := range first {
			sum += float64(first[uc]) / float64(best[uc])
			n++
		}
		b.ReportMetric(sum/float64(n), "mean-first/best")
	}
}

// BenchmarkE8Arbitration regenerates the E8 table (RR vs TDM bus) and
// reports the mean TDM/RR bound ratio.
func BenchmarkE8Arbitration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.E8(4)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += float64(r.TDMBound) / float64(r.RRBound)
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-tdm/rr")
	}
}

// --- micro-benchmarks of the tool-chain stages -------------------------------

// BenchmarkOptimize walks the full default candidate ladder on a 4-core
// platform — the /v1/optimize hot path. The headline perf number of the
// explore/schedule/analyze overhaul (see BENCH_PR2.json).
func BenchmarkOptimize(b *testing.B) {
	u := usecases.POLKA()
	p, err := u.Program()
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions(u.Entry, u.Args, adl.XentiumPlatform(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(p, opt, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSchedInput builds a deterministic layered DAG scheduling problem.
func benchSchedInput(n, cores int) *sched.Input {
	platform := adl.XentiumPlatform(cores)
	rng := rand.New(rand.NewSource(7))
	in := &sched.Input{Platform: platform}
	for i := 0; i < n; i++ {
		t := sched.Task{ID: i, WCET: make([]int64, cores), SharedAccesses: int64(rng.Intn(200))}
		w := int64(20 + rng.Intn(300))
		for c := range t.WCET {
			t.WCET[c] = w
		}
		in.Tasks = append(in.Tasks, t)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				in.Deps = append(in.Deps, sched.Dep{From: i, To: j, VolumeBytes: rng.Intn(512)})
			}
		}
	}
	return in
}

// BenchmarkListSchedule measures the contention-aware list scheduler on a
// 64-task DAG (the per-feedback-round scheduler cost inside Compile).
func BenchmarkListSchedule(b *testing.B) {
	in := benchSchedInput(64, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(in, sched.ListContentionAware); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBranchBound measures the exact mapper on a 12-task DAG (the
// E6 workload scale).
func BenchmarkBranchBound(b *testing.B) {
	in := benchSchedInput(12, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(in, sched.BranchBound); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompilePolka(b *testing.B) {
	u := usecases.POLKA()
	p, err := u.Program()
	if err != nil {
		b.Fatal(err)
	}
	platform := adl.XentiumPlatform(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(p, core.DefaultOptions(u.Entry, u.Args, platform)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateFrame(b *testing.B) {
	u := usecases.POLKA()
	art, err := argo.CompileUseCase(u, argo.Platform("xentium4"))
	if err != nil {
		b.Fatal(err)
	}
	in := u.Inputs(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(art.Parallel, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLowerEGPWS(b *testing.B) {
	u := usecases.EGPWS()
	p, err := u.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ir.Lower(p, u.Entry, u.Args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStructuralWCET(b *testing.B) {
	u := usecases.EGPWS()
	p, _ := u.Program()
	prog, err := ir.Lower(p, u.Entry, u.Args)
	if err != nil {
		b.Fatal(err)
	}
	m := wcet.ModelFor(adl.XentiumPlatform(4), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if wcet.Structural(prog.Entry.Body, m) <= 0 {
			b.Fatal("zero bound")
		}
	}
}

func BenchmarkIPETWCET(b *testing.B) {
	src := `function r = f(v)
  r = 0
  for i = 1:16
    for j = 1:16
      if v(i, j) > 0 then
        r = r + sqrt(v(i, j))
      else
        r = r - v(i, j)
      end
    end
  end
endfunction`
	p, err := scil.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ir.Lower(p, "f", []ir.ArgSpec{ir.MatrixArg(16, 16)})
	if err != nil {
		b.Fatal(err)
	}
	m := wcet.ModelFor(adl.XentiumPlatform(1), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wcet.IPET(prog.Entry.Body, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexLP(b *testing.B) {
	prob := &lp.Problem{Obj: []float64{3, 2, 4, 1, 5}}
	prob.AddLE([]float64{1, 1, 1, 1, 1}, 10)
	prob.AddLE([]float64{2, 1, 0, 3, 1}, 12)
	prob.AddLE([]float64{0, 2, 1, 0, 3}, 9)
	prob.AddGE([]float64{1, 0, 0, 0, 1}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := lp.Solve(prob); s.Status != lp.Optimal {
			b.Fatal(s.Status)
		}
	}
}

func BenchmarkNoCSimulation(b *testing.B) {
	spec := adl.Leon3TilePlatform(4, 4).NoC
	cfg := &noc.Config{Spec: *spec, Flows: []noc.Flow{
		{ID: 0, Src: noc.Coord{X: 0, Y: 0}, Dst: noc.Coord{X: 3, Y: 3}, PacketFlits: 4, PeriodCycles: 200},
		{ID: 1, Src: noc.Coord{X: 1, Y: 0}, Dst: noc.Coord{X: 3, Y: 3}, PacketFlits: 8, PeriodCycles: 260},
		{ID: 2, Src: noc.Coord{X: 0, Y: 1}, Dst: noc.Coord{X: 3, Y: 1}, PacketFlits: 4, PeriodCycles: 220},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := noc.Simulate(cfg, 5000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Deployment regenerates the E9 table (multi-application
// cyclic-executive deployment) and reports the 8-core utilization.
func BenchmarkE9Deployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.E9([]string{"xentium8"})
		if err != nil {
			b.Fatal(err)
		}
		if !rows[0].Schedulable {
			b.Fatal("not schedulable")
		}
		b.ReportMetric(rows[0].Utilization, "utilization")
	}
}

// BenchmarkE10Faults regenerates (a slice of) the E10 table — bound
// soundness under deterministic fault injection — and reports how many
// injected runs were checked. Fault injection re-executes the simulator
// per (platform, use case, level, seed) cell, so this is the
// heaviest simulator-bound experiment and the headline E10 wall time.
func BenchmarkE10Faults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, neg, _, err := experiments.E10([]string{"xentium4", "leon3-2x2"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Violations != 0 {
				b.Fatalf("%s/%s unsound under in-budget injection", r.Platform, r.UseCase)
			}
		}
		for _, r := range neg {
			if !r.Flagged {
				b.Fatalf("%s over-bound injection not detected", r.UseCase)
			}
		}
		b.ReportMetric(float64(len(rows)), "cells")
	}
}

// vmBenchProgram lowers the POLKA use case — the program the interpreter
// micro-benchmarks execute.
func vmBenchProgram(b *testing.B) *ir.Program {
	b.Helper()
	u := usecases.POLKA()
	p, err := u.Program()
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ir.Lower(p, u.Entry, u.Args)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkVMExec measures one full IR execution (init, entry body,
// results) through the compiled register-bytecode VM; compilation
// happens once outside the loop — the compile-once/execute-per-run
// contract the simulator relies on.
func BenchmarkVMExec(b *testing.B) {
	prog := vmBenchProgram(b)
	cp, err := vm.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.NewMachine(cp, nil)
	in := usecases.POLKA().Inputs(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Init(in); err != nil {
			b.Fatal(err)
		}
		if err := m.ExecEntry(); err != nil {
			b.Fatal(err)
		}
		if got := m.Results(); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkTreeExec is BenchmarkVMExec through the tree-walking oracle —
// the before/after pair quantifying the VM speedup.
func BenchmarkTreeExec(b *testing.B) {
	prog := vmBenchProgram(b)
	ex := ir.NewExec(prog, nil)
	in := usecases.POLKA().Inputs(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ex.Init(in); err != nil {
			b.Fatal(err)
		}
		if err := ex.ExecBlock(prog.Entry.Body); err != nil {
			b.Fatal(err)
		}
		if got := ex.Results(); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkSimulate measures end-to-end simulator runs/sec with the
// bytecode VM on the functional phase (the default engine).
func BenchmarkSimulate(b *testing.B) {
	benchSimulate(b, sim.InterpVM)
}

// BenchmarkSimulateTree is BenchmarkSimulate under -interp=tree.
func BenchmarkSimulateTree(b *testing.B) {
	benchSimulate(b, sim.InterpTree)
}

func benchSimulate(b *testing.B, interp sim.Interp) {
	u := usecases.POLKA()
	art, err := argo.CompileUseCase(u, argo.Platform("xentium4"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rotate the input seed so the steady state is the production
		// shape: fresh inputs per run, segment traces warm in the cache.
		if _, err := sim.RunInterp(art.Parallel, u.Inputs(int64(i%8)), interp); err != nil {
			b.Fatal(err)
		}
	}
}

// ipetBenchProgram is the loop-nest-with-branches program the IPET
// benchmarks share (the same shape BenchmarkIPETWCET measures).
func ipetBenchProgram(b *testing.B) *ir.Program {
	b.Helper()
	src := `function r = f(v)
  r = 0
  for i = 1:16
    for j = 1:16
      if v(i, j) > 0 then
        r = r + sqrt(v(i, j))
      else
        r = r - v(i, j)
      end
    end
  end
endfunction`
	p, err := scil.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ir.Lower(p, "f", []ir.ArgSpec{ir.MatrixArg(16, 16)})
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkIPET measures the pooled, warm-started IPET path: solver
// workspaces are reused across calls, so steady-state allocations stay
// near zero.
func BenchmarkIPET(b *testing.B) {
	prog := ipetBenchProgram(b)
	m := wcet.ModelFor(adl.XentiumPlatform(1), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wcet.IPET(prog.Entry.Body, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIPETCold is the same analysis on fresh solver state every
// call — the allocation baseline BenchmarkIPET is compared against.
func BenchmarkIPETCold(b *testing.B) {
	prog := ipetBenchProgram(b)
	m := wcet.ModelFor(adl.XentiumPlatform(1), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wcet.IPETCold(prog.Entry.Body, m); err != nil {
			b.Fatal(err)
		}
	}
}

// mipBenchProblem is a correlated multi-constraint 0/1 knapsack the MIP
// benchmarks share: value ≈ weight makes the LP relaxation fractional
// along many branches, so branch-and-bound explores a real tree.
func mipBenchProblem() *lp.Problem {
	rng := rand.New(rand.NewSource(7))
	n, m := 14, 4
	p := &lp.Problem{Obj: make([]float64, n), Integer: make([]bool, n)}
	rows := make([][]float64, m)
	for j := range rows {
		rows[j] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		w := float64(3 + rng.Intn(10))
		p.Obj[i] = w + float64(rng.Intn(3))
		p.Integer[i] = true
		for j := range rows {
			rows[j][i] = w + float64(rng.Intn(4))
		}
		unit := make([]float64, n)
		unit[i] = 1
		p.AddLE(unit, 1)
	}
	for j := range rows {
		var sum float64
		for _, w := range rows[j] {
			sum += w
		}
		p.AddLE(rows[j], sum/2)
	}
	return p
}

// BenchmarkSolveMIP measures branch-and-bound with dual-simplex
// warm starts on pooled workspaces.
func BenchmarkSolveMIP(b *testing.B) {
	p := mipBenchProblem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := lp.SolveMIP(p); s.Status != lp.Optimal {
			b.Fatal(s.Status)
		}
	}
}

// BenchmarkSolveMIPReference is the naive rebuild-and-resolve
// branch-and-bound baseline.
func BenchmarkSolveMIPReference(b *testing.B) {
	p := mipBenchProblem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := lp.SolveMIPReference(p); s.Status != lp.Optimal {
			b.Fatal(s.Status)
		}
	}
}

// syswcetBenchFixture compiles EGPWS down to a schedule, the input the
// system-level WCET benchmarks analyze.
func syswcetBenchFixture(b *testing.B) (*sched.Input, *sched.Schedule) {
	b.Helper()
	platform := adl.XentiumPlatform(4)
	u := usecases.EGPWS()
	p, err := u.Program()
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ir.Lower(p, u.Entry, u.Args)
	if err != nil {
		b.Fatal(err)
	}
	transform.Apply(prog, transform.Options{Fold: true})
	g := htg.Build(prog)
	models := make([]wcet.CostModel, platform.NumCores())
	for c := range models {
		models[c] = wcet.ModelFor(platform, c)
	}
	htg.Annotate(g, models)
	in := sched.FromHTG(g, platform)
	s, err := sched.Run(in, sched.ListContentionAware)
	if err != nil {
		b.Fatal(err)
	}
	return in, s
}

// BenchmarkSysWCET measures the incremental interference fixed point
// (dirty-set propagation, pooled scratch state).
func BenchmarkSysWCET(b *testing.B) {
	in, s := syswcetBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := syswcet.Analyze(in, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSysWCETFull recomputes every task's interference in every
// round — the baseline the incremental fixed point is compared against.
func BenchmarkSysWCETFull(b *testing.B) {
	in, s := syswcetBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := syswcet.AnalyzeFull(in, s); err != nil {
			b.Fatal(err)
		}
	}
}

// sessionBenchVariants builds the two what-if platform variants the
// session-edit benchmarks alternate between (deep copies of a builtin,
// differing in one ADL parameter).
func sessionBenchVariants(b *testing.B, platName string) (*adl.Platform, *adl.Platform) {
	b.Helper()
	clone := func(v int) *adl.Platform {
		data, err := adl.Encode(adl.Builtin(platName))
		if err != nil {
			b.Fatal(err)
		}
		p, err := adl.Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		p.Shared.AccessCycles = v
		return p
	}
	return clone(20), clone(40)
}

// BenchmarkSessionEdit measures the steady-state cost of one interactive
// what-if edit (internal/session): the session alternates between two
// ADL parameter values, so each edit re-runs only the dirty pass suffix
// while the clean prefix and the previously analyzed variant restore
// from the session's private pass cache. Compare against
// BenchmarkSessionEditCold — the same alternation paid as full cold
// compiles — for the incremental speedup interactive sessions deliver.
func BenchmarkSessionEdit(b *testing.B) {
	uc := usecases.ByName("polka")
	opt := core.DefaultOptions(uc.Entry, uc.Args, adl.Builtin("xentium4"))
	s, _, err := session.New(context.Background(), uc.Source, opt, fault.Spec{})
	if err != nil {
		b.Fatal(err)
	}
	edits := []session.Edit{
		{Op: session.OpSetParam, Param: "shared.access_cycles", Value: 20},
		{Op: session.OpSetParam, Param: "shared.access_cycles", Value: 40},
	}
	// Warm both variants into the session cache (the steady state of an
	// interactive loop revisiting configurations).
	for _, e := range edits {
		if _, err := s.Apply(context.Background(), e, session.ApplyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	skipped, reran := 0, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Apply(context.Background(), edits[i%2], session.ApplyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		skipped += res.PassesSkipped
		reran += res.PassesReran
	}
	b.StopTimer()
	if total := skipped + reran; total > 0 {
		b.ReportMetric(float64(skipped)/float64(total), "skipped/pass")
	}
}

// BenchmarkSessionEditCold is the no-session baseline for
// BenchmarkSessionEdit: the identical what-if alternation paid as full
// cold pipeline runs (pass caching off), the way a stateless client
// re-submitting /v1/compile without a result-cache hit would.
func BenchmarkSessionEditCold(b *testing.B) {
	uc := usecases.ByName("polka")
	pa, pb := sessionBenchVariants(b, "xentium4")
	opts := []core.Options{
		core.DefaultOptions(uc.Entry, uc.Args, pa),
		core.DefaultOptions(uc.Entry, uc.Args, pb),
	}
	for i := range opts {
		opts[i].Passes.NoCache = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CompileSource(uc.Source, opts[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMExecSuperOff is BenchmarkVMExec with the multiply-
// accumulate superinstructions disabled at compile time — the A-B
// column isolating the fused-dispatch win (results are bit-identical
// either way; only the dispatch count differs).
func BenchmarkVMExecSuperOff(b *testing.B) {
	prog := vmBenchProgram(b)
	vm.SetSuperinstructions(false)
	cp, err := vm.Compile(prog)
	vm.SetSuperinstructions(true)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.NewMachine(cp, nil)
	in := usecases.POLKA().Inputs(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Init(in); err != nil {
			b.Fatal(err)
		}
		if err := m.ExecEntry(); err != nil {
			b.Fatal(err)
		}
		if got := m.Results(); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkCompileFresh measures what a fresh compilation of an
// already-seen configuration costs now that the structural passes
// (build-htg through par-build) snapshot into the process-wide pass
// cache: one cold compile warms pass.Global, then every iteration is a
// brand-new core.Compile (distinct pass.Context, as a new argod request
// presents) restored from the shared tier. Compare
// BenchmarkCompileFreshCold for the unwarmed cost.
func BenchmarkCompileFresh(b *testing.B) {
	u := usecases.EGPWS()
	p, err := u.Program()
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions(u.Entry, u.Args, adl.XentiumPlatform(4))
	pass.Global.Reset()
	if _, err := core.Compile(p, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(p, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileFreshCold is the cold-path baseline for
// BenchmarkCompileFresh: the identical compilation with the pass cache
// disabled, so every structural pass re-executes each iteration.
func BenchmarkCompileFreshCold(b *testing.B) {
	u := usecases.EGPWS()
	p, err := u.Program()
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions(u.Entry, u.Args, adl.XentiumPlatform(4))
	opt.Passes.NoCache = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(p, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionEditFresh measures interactive-session bootstrap over
// a warm process: every iteration creates a brand-new session (private
// pass cache, falling back to the warmed pass.Global) and applies one
// edit. The initial full analysis restores its structural ladder from
// the Global tier instead of recomputing it — the cost a second client
// pays to open a what-if session on a configuration the daemon has
// already compiled.
func BenchmarkSessionEditFresh(b *testing.B) {
	uc := usecases.ByName("polka")
	opt := core.DefaultOptions(uc.Entry, uc.Args, adl.Builtin("xentium4"))
	pass.Global.Reset()
	warm, _, err := session.New(context.Background(), uc.Source, opt, fault.Spec{})
	if err != nil {
		b.Fatal(err)
	}
	edit := session.Edit{Op: session.OpSetParam, Param: "shared.access_cycles", Value: 30}
	if _, err := warm.Apply(context.Background(), edit, session.ApplyOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _, err := session.New(context.Background(), uc.Source, opt, fault.Spec{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Apply(context.Background(), edit, session.ApplyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// wcetBenchRegion lowers the EGPWS entry region once — the shared
// fixture of the engine benchmarks below, so their numbers compare
// per-engine analysis cost on identical input.
func wcetBenchRegion(b *testing.B) ([]ir.Stmt, wcet.CostModel) {
	b.Helper()
	u := usecases.EGPWS()
	p, err := u.Program()
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ir.Lower(p, u.Entry, u.Args)
	if err != nil {
		b.Fatal(err)
	}
	return prog.Entry.Body, wcet.ModelFor(adl.XentiumPlatform(4), 0)
}

// BenchmarkWCETIPET measures one uncached run of the default engine
// (structural bound + access counting) on the EGPWS entry region.
func BenchmarkWCETIPET(b *testing.B) {
	stmts, m := wcetBenchRegion(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := wcet.IPETEngine.Analyze(stmts, m); rep.Cycles <= 0 {
			b.Fatal("zero bound")
		}
	}
}

// BenchmarkWCETMC measures one uncached run of the exact engine (slice +
// abstract timed-state exploration) on the same region — the price of a
// tighter bound relative to BenchmarkWCETIPET.
func BenchmarkWCETMC(b *testing.B) {
	stmts, m := wcetBenchRegion(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := mc.Default.Analyze(stmts, m); rep.Cycles <= 0 {
			b.Fatal("zero bound")
		}
	}
}

// BenchmarkSlice measures the timing-relevant slicer alone (the mc
// engine's first stage).
func BenchmarkSlice(b *testing.B) {
	stmts, _ := wcetBenchRegion(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl := slice.Analyze(stmts)
		if len(sl.Scalars)+len(sl.Mats) == 0 {
			b.Fatal("empty slice")
		}
	}
}

// BenchmarkHashRingOwner measures one rendezvous-hash placement
// decision over a 5-member ring — the per-request cost a coordinator
// pays to pick a key's replica.
func BenchmarkHashRingOwner(b *testing.B) {
	members := make([]string, 5)
	for i := range members {
		members[i] = fmt.Sprintf("http://replica-%d:8321", i)
	}
	ring := cluster.NewRing(members)
	ks := make([]string, 256)
	for i := range ks {
		ks[i] = fmt.Sprintf("sha256:%08x-job-key", i*2654435761)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ring.Owner(ks[i%len(ks)]) == "" {
			b.Fatal("no owner")
		}
	}
}

// BenchmarkClusterForwardHit measures the coordinator's full forwarding
// path (placement, HTTP hop, hot-set recording) against an in-process
// replica that answers instantly — the wire overhead the cluster adds
// on top of the analysis itself.
func BenchmarkClusterForwardHit(b *testing.B) {
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer replica.Close()
	c := cluster.New(cluster.Options{Peers: []string{replica.URL}})
	body := []byte(`{"usecase":"polka","platform":"xentium4"}`)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Forward(ctx, fmt.Sprintf("key-%d", i), "/v1/compile", body)
		if err != nil || res.Status != http.StatusOK {
			b.Fatalf("forward: %v %+v", err, res)
		}
	}
}
