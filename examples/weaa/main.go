// WEAA example: the wake-encounter avoidance use case. Runs the iterative
// cross-layer optimization to pick the best tool-chain configuration,
// then simulates several traffic encounters and prints the evasion
// advisories the system would issue — each within its guaranteed WCET.
//
//	go run ./examples/weaa
package main

import (
	"fmt"
	"log"

	"argo/pkg/argo"
)

func main() {
	uc := argo.UseCaseByName("weaa")
	fmt.Println("WEAA:", uc.Description)
	platform := argo.Platform("xentium4")

	// Iterative optimization: the tool-chain tries transformation /
	// granularity / mapping configurations and keeps the lowest bound.
	res, err := argo.OptimizeUseCase(uc, platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\niterative cross-layer optimization:")
	for _, rec := range res.History {
		marker := " "
		if res.Best != nil && rec.Err == nil && rec.Bound == rec.BestSoFar {
			marker = "*"
		}
		fmt.Printf(" %s iter %d %-24s bound %d\n", marker, rec.Iteration, rec.Candidate.Name, rec.Bound)
	}
	art := res.Best
	fmt.Printf("\nbest configuration: bound %d cycles, speedup %.2fx\n", art.Bound(), art.WCETSpeedup())

	fmt.Println("\nencounter scenarios:")
	for seed := int64(1); seed <= 4; seed++ {
		in := uc.Inputs(seed)
		rep, err := argo.Simulate(art, in)
		if err != nil {
			log.Fatal(err)
		}
		if err := argo.CheckBounds(art, rep); err != nil {
			log.Fatalf("bound violated: %v", err)
		}
		scores := rep.Results[0]
		best := int(rep.Results[1][0]) - 1
		dh := in[2][best*3+0]
		dc := in[2][best*3+1]
		fmt.Printf("  encounter %d: advise heading %+5.2f rad, climb %+5.2f m/s (score %.2f; alternatives ",
			seed, dh, dc, scores[best])
		for i, s := range scores {
			if i == best {
				fmt.Printf("[%.1f] ", s)
			} else {
				fmt.Printf("%.1f ", s)
			}
		}
		fmt.Printf(") in %d cycles\n", rep.Makespan)
	}
}
