// Quickstart: compile a small model-based application with the ARGO
// tool-chain, inspect its guaranteed-performance report, and validate the
// WCET bound against the platform simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"argo/pkg/argo"
)

// A tiny "sensor conditioning" application in the scil subset: scale and
// clamp a sensor frame, then compute per-row energy. The tool-chain
// parallelizes it automatically with a guaranteed WCET bound.
const src = `
function energy = condition(frame)
  h = size(frame, 1)
  w = size(frame, 2)
  clean = zeros(h, w)
  for i = 1:h
    for j = 1:w
      v = frame(i, j) * 0.5 - 1
      clean(i, j) = min(max(v, 0), 100)
    end
  end
  energy = zeros(h, 1)
  for i = 1:h
    acc = 0
    for j = 1:w
      acc = acc + clean(i, j) * clean(i, j)
    end
    energy(i, 1) = sqrt(acc)
  end
endfunction`

func main() {
	// 1. Pick a predictable multi-core platform from the ADL library.
	platform := argo.Platform("xentium4")

	// 2. Compile: lowering, predictability transformations, task
	//    extraction, WCET-aware scheduling, system-level WCET analysis,
	//    parallel program construction.
	opt := argo.DefaultOptions("condition", []argo.ArgSpec{argo.MatrixArg(32, 32)}, platform)
	art, err := argo.CompileSource(src, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(argo.Describe(art))

	// 3. The cross-layer report explains what every stage decided.
	fmt.Println(argo.Explain(art))

	// 4. Run the parallel program on the platform simulator and verify
	//    the measured makespan stays below the static bound.
	frame := make([]float64, 32*32)
	for i := range frame {
		frame[i] = float64((i*37)%211) - 20
	}
	rep, err := argo.Simulate(art, [][]float64{frame})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated makespan: %d cycles (bound %d) — first row energy %.2f\n",
		rep.Makespan, art.Bound(), rep.Results[0][0])
	if err := argo.CheckBounds(art, rep); err != nil {
		log.Fatalf("soundness violation: %v", err)
	}
	fmt.Println("soundness check passed: measured <= bound")
}
