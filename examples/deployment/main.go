// Deployment example: the end-to-end real-time story. All three ARGO
// applications are compiled to guaranteed WCET bounds on one shared
// multi-core, and a static cyclic executive is built that runs them at
// their real periods — the verified deployment the bounds exist for.
//
//	go run ./examples/deployment
package main

import (
	"fmt"
	"log"
	"sort"

	"argo/internal/rt"
	"argo/pkg/argo"
)

func main() {
	platform := argo.Platform("xentium8")
	fmt.Printf("deploying all ARGO applications on %s\n\n", platform.Name)

	var jobs []rt.Job
	for _, uc := range argo.UseCases() {
		art, err := argo.CompileUseCase(uc, platform)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s bound %8d cycles, period %8d (%.1f%% of budget)\n",
			uc.Name, art.Bound(), uc.Period, 100*float64(art.Bound())/float64(uc.Period))
		jobs = append(jobs, rt.Job{Name: uc.Name, BoundCycles: art.Bound(), PeriodCycles: uc.Period})
	}

	fmt.Printf("\ntotal utilization: %.1f%%\n", 100*rt.Utilization(jobs))
	cs, err := rt.BuildCyclicExecutive(jobs)
	if err != nil {
		log.Fatalf("not schedulable: %v", err)
	}
	if err := cs.Validate(); err != nil {
		log.Fatalf("invalid executive: %v", err)
	}

	fmt.Printf("cyclic executive over hyperperiod %d cycles (%d slots):\n", cs.Hyperperiod, len(cs.Slots))
	for _, s := range cs.Slots {
		j := cs.Jobs[s.Job]
		fmt.Printf("  [%9d, %9d)  %-6s instance %d  (deadline %9d, slack %8d)\n",
			s.Start, s.Finish, j.Name, s.Instance, s.Deadline, s.Deadline-s.Finish)
	}

	slack := cs.SlackReport()
	var names []string
	for n := range slack {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("\nminimum slack per application (how much each bound may grow):")
	for _, n := range names {
		fmt.Printf("  %-6s %d cycles\n", n, slack[n])
	}
}
