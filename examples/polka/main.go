// POLKA example: the industrial polarization-camera inspection use case.
// Shows both front-end paths of the ARGO tool-chain: (1) the full POLKA
// scil model on an in-line inspection stream, and (2) an Xcos-style
// dataflow diagram built from library blocks, flattened and compiled
// through the same pipeline.
//
//	go run ./examples/polka
package main

import (
	"fmt"
	"log"

	"argo/pkg/argo"
)

func main() {
	uc := argo.UseCaseByName("polka")
	fmt.Println("POLKA:", uc.Description)
	platform := argo.Platform("xentium4")
	art, err := argo.CompileUseCase(uc, platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(argo.Describe(art))
	frameBudget := uc.Period
	fmt.Printf("in-line deadline: %d cycles/frame; guaranteed: %d (%.1f%% margin)\n\n",
		frameBudget, art.Bound(), 100*(1-float64(art.Bound())/float64(frameBudget)))

	// Inspect a stream of containers; every frame is guaranteed to finish
	// within the bound, so the line never stalls.
	fmt.Println("inspection stream:")
	for seed := int64(0); seed < 6; seed++ {
		rep, err := argo.Simulate(art, uc.Inputs(seed))
		if err != nil {
			log.Fatal(err)
		}
		if err := argo.CheckBounds(art, rep); err != nil {
			log.Fatalf("bound violated: %v", err)
		}
		defects := int(rep.Results[1][0])
		peak := rep.Results[2][0]
		verdict := "PASS"
		if defects > 0 {
			verdict = fmt.Sprintf("REJECT (%d stressed tiles)", defects)
		}
		fmt.Printf("  container %d: peak DoLP %.3f -> %-24s (%d cycles)\n", seed, peak, verdict, rep.Makespan)
	}

	// The same kind of pipeline as an Xcos-style block diagram.
	fmt.Println("\nxcos dataflow variant (smooth -> gradient -> threshold):")
	d := &argo.Diagram{
		Name:   "inspect_diagram",
		Inputs: []string{"img"},
		Blocks: []argo.Block{
			{Name: "pre", Kind: "smooth3"},
			{Name: "edges", Kind: "gradmag"},
			{Name: "mask", Kind: "threshold", Params: map[string]float64{"t": 6}},
			{Name: "hits", Kind: "sumall"},
		},
		Links: []argo.Link{
			{From: "img", To: "pre", Port: 0},
			{From: "pre", To: "edges", Port: 0},
			{From: "edges", To: "mask", Port: 0},
			{From: "mask", To: "hits", Port: 0},
		},
		Outputs: []string{"hits"},
	}
	dart, err := argo.CompileDiagram(d, []argo.ArgSpec{argo.MatrixArg(24, 24)}, platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(argo.Describe(dart))
	img := make([]float64, 24*24)
	for i := 9; i < 15; i++ {
		for j := 9; j < 15; j++ {
			img[i*24+j] = 90
		}
	}
	rep, err := argo.Simulate(dart, [][]float64{img})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge pixels above threshold: %.0f (makespan %d <= bound %d)\n",
		rep.Results[0][0], rep.Makespan, dart.Bound())
}
