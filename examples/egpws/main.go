// EGPWS example: the aerospace terrain-awareness use case of the ARGO
// project. Compiles the Enhanced Ground Proximity Warning System for two
// target platforms, compares their guaranteed bounds against the real-time
// period, and flies a descending approach scenario through the simulator
// to show the alerting behaviour.
//
//	go run ./examples/egpws
package main

import (
	"fmt"
	"log"

	"argo/pkg/argo"
)

func main() {
	uc := argo.UseCaseByName("egpws")
	fmt.Println("EGPWS:", uc.Description)
	fmt.Println()

	// Compare the two ARGO target platform families.
	for _, name := range []string{"xentium4", "leon3-2x2"} {
		platform := argo.Platform(name)
		art, err := argo.CompileUseCase(uc, platform)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "MEETS"
		if art.Bound() > uc.Period {
			verdict = "MISSES"
		}
		fmt.Printf("%-12s bound %8d cycles (%.2fx vs sequential) — %s the %d-cycle period\n",
			name, art.Bound(), art.WCETSpeedup(), verdict, uc.Period)
	}
	fmt.Println()

	// Fly a scenario: same terrain, increasingly aggressive descent.
	platform := argo.Platform("xentium4")
	art, err := argo.CompileUseCase(uc, platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("approach scenario (same terrain, steepening descent):")
	for _, vz := range []float64{1.0, -2.0, -4.5, -12.0} {
		in := uc.Inputs(7)
		in[1][2] = 700 // altitude above the highest ridges
		in[1][5] = vz  // vertical speed
		rep, err := argo.Simulate(art, in)
		if err != nil {
			log.Fatal(err)
		}
		if err := argo.CheckBounds(art, rep); err != nil {
			log.Fatalf("bound violated: %v", err)
		}
		worst := rep.Results[1][0]
		alert := int(rep.Results[2][0])
		level := [...]string{"clear", "CAUTION", "PULL UP"}[alert]
		fmt.Printf("  vz %+6.1f m/s: worst sector risk %8.1f  alert %-8s (makespan %d <= bound %d)\n",
			vz, worst, level, rep.Makespan, art.Bound())
	}
}
